// Tests for the api/session.h facade: prepared parameterized queries
// amortising one compile over N bindings (asserted via the session plan
// cache stats), streaming cursors agreeing with materialised execution on
// the fuzzer corpus, concurrent Execute on one PreparedQuery, binding
// arity/type errors, EXPLAIN output and the caret-annotated SQL errors.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/session.h"
#include "approx/approx.h"
#include "ctables/ceval.h"
#include "sql/translate.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;
using testing_util::RandomBagDatabase;
using testing_util::RandomQueryGen;

Tuple Str(const std::string& s) { return Tuple{Value::String(s)}; }

// --- Prepared queries: one compile for N bindings ----------------------------

TEST(SessionTest, PrepareOnceExecuteManyCompilesOnce) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_EQ(pq->param_count(), 1u);

  // N distinct bindings share the single compiled template.
  const int kBindings = 25;
  for (int i = 0; i < kBindings; ++i) {
    auto r = pq->Execute({Value::Int(i * 5)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  SessionStats stats = sess.stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u) << "N bindings must cost 1 compile";
  EXPECT_EQ(stats.executes, static_cast<uint64_t>(kBindings));

  // Results are the binding's, not the template's.
  auto r30 = pq->Execute({Value::Int(30)});
  auto r40 = pq->Execute({Value::Int(40)});
  auto r99 = pq->Execute({Value::Int(99)});
  ASSERT_TRUE(r30.ok() && r40.ok() && r99.ok());
  EXPECT_EQ(r30->SortedTuples(), (std::vector<Tuple>{Str("o2"), Str("o3")}));
  EXPECT_EQ(r40->SortedTuples(), std::vector<Tuple>{Str("o3")});
  EXPECT_TRUE(r99->Empty());

  // Re-preparing the same text hits the same entry.
  for (int i = 0; i < 4; ++i) {
    auto again = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
    ASSERT_TRUE(again.ok());
  }
  stats = sess.stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.plan_cache.hits, 4u);
}

TEST(SessionTest, LiteralQueriesKeySeparatelyButParamsShare) {
  // The contrast the facade exists for: distinct literal constants compile
  // per constant; the parameterized shape compiles once.
  Session sess(FigureOne(false));
  ASSERT_TRUE(sess.Execute("SELECT oid FROM Orders WHERE price > 30").ok());
  ASSERT_TRUE(sess.Execute("SELECT oid FROM Orders WHERE price > 40").ok());
  EXPECT_EQ(sess.stats().plan_cache.misses, 2u);

  sess.ClearPlanCache();
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok());
  ASSERT_TRUE(pq->Execute({Value::Int(30)}).ok());
  ASSERT_TRUE(pq->Execute({Value::Int(40)}).ok());
  EXPECT_EQ(sess.stats().plan_cache.misses, 3u);  // one more, total
}

TEST(SessionTest, ParameterInSubqueryBindsThroughTranslation) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare(
      "SELECT oid FROM Orders WHERE oid NOT IN "
      "( SELECT oid FROM Payments WHERE cid = ? )");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_EQ(pq->param_count(), 1u);
  auto r1 = pq->Execute({Value::String("c1")});  // c1 paid o1
  auto r2 = pq->Execute({Value::String("c2")});  // c2 paid o2
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->SortedTuples(), (std::vector<Tuple>{Str("o2"), Str("o3")}));
  EXPECT_EQ(r2->SortedTuples(), (std::vector<Tuple>{Str("o1"), Str("o3")}));
  EXPECT_EQ(sess.stats().plan_cache.misses, 1u);
}

TEST(SessionTest, AlgebraPreparedParamsMatchLiteralQuery) {
  Session sess(FigureOne(true));
  AlgPtr tmpl = Project(
      Select(Scan("Orders"), CGtc("price", Value::Param(0))), {"oid"});
  AlgPtr lit =
      Project(Select(Scan("Orders"), CGtc("price", Value::Int(35))), {"oid"});
  for (EvalMode mode :
       {EvalMode::kSetNaive, EvalMode::kBagNaive, EvalMode::kSetSql}) {
    auto pq = sess.Prepare(tmpl, mode);
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();
    auto bound = pq->Execute({Value::Int(35)});
    auto direct = sess.Prepare(lit, mode);
    ASSERT_TRUE(bound.ok() && direct.ok());
    auto expect = direct->Execute();
    ASSERT_TRUE(expect.ok());
    EXPECT_TRUE(bound->SameRows(*expect));
  }
}

// --- Binding validation ------------------------------------------------------

TEST(SessionTest, BindingArityAndTypeMismatchErrors) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok());

  auto none = pq->Execute({});
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(none.status().message().find("1 parameter"), std::string::npos);

  auto extra = pq->Execute({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kInvalidArgument);

  // Type mismatches: nulls and parameters are not constants.
  auto null_bind = pq->Execute({Value::Null(7)});
  EXPECT_FALSE(null_bind.ok());
  EXPECT_NE(null_bind.status().message().find("constant"), std::string::npos);
  auto param_bind = pq->Execute({Value::Param(0)});
  EXPECT_FALSE(param_bind.ok());

  // A parameter-free query rejects spurious bindings.
  auto plain = sess.Prepare("SELECT oid FROM Orders");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->param_count(), 0u);
  EXPECT_FALSE(plain->Execute({Value::Int(1)}).ok());
}

TEST(SessionTest, RawExecuteRejectsUnboundTemplates) {
  // The low-level plan API refuses to run a template: parameters must be
  // bound (the predicate closures would silently compare placeholders).
  Database db = FigureOne(false);
  AlgPtr tmpl = Select(Scan("Orders"), CEqc("price", Value::Param(0)));
  auto plan = Compile(tmpl, EvalMode::kSetNaive, EvalOptions{}, db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->param_count, 1u);
  auto run = Execute(*plan, db);
  EXPECT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("unbound parameter"),
            std::string::npos);

  auto bound = BindPlanParams(*plan, {Value::Int(35)});
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ((*bound)->param_count, 0u);
  auto ok = Execute(*bound, db);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->DistinctSize(), 1u);
}

// --- Concurrency -------------------------------------------------------------

TEST(SessionTest, ConcurrentExecuteOnOnePreparedQuery) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok());

  // Expected distinct-result sizes per threshold (prices: 30, 35, 50).
  const std::vector<std::pair<int64_t, size_t>> cases = {
      {0, 3}, {30, 2}, {35, 1}, {40, 1}, {50, 0}, {100, 0}};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const auto& [threshold, expected] = cases[(t + i) % cases.size()];
        auto r = pq->Execute({Value::Int(threshold)});
        if (!r.ok() || r->DistinctSize() != expected) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sess.stats().plan_cache.misses, 1u);
  EXPECT_EQ(sess.stats().executes, 400u);
}

// --- Cursors -----------------------------------------------------------------

/// Accumulates every delivery of `cur` into a relation (the cursor
/// contract: this must equal the materialised execution as a bag).
Relation Drain(Cursor& cur) {
  Relation acc(cur.attrs());
  while (cur.Next()) {
    Status st = acc.Insert(cur.row(), cur.count());
    EXPECT_TRUE(st.ok());
  }
  return acc;
}

TEST(SessionTest, CursorStreamsFilterChainsWithoutMaterialising) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok());
  auto cur = pq->OpenCursor({Value::Int(30)});
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  EXPECT_TRUE(cur->streaming());
  EXPECT_EQ(cur->attrs(), std::vector<std::string>{"oid"});

  // Exists-style consumption: the first pull suffices.
  ASSERT_TRUE(cur->Next());
  EXPECT_EQ(cur->count(), 1u);

  auto cur2 = pq->OpenCursor({Value::Int(30)});
  ASSERT_TRUE(cur2.ok());
  Relation acc = Drain(*cur2);
  auto full = pq->Execute({Value::Int(30)});
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(acc.SameRows(*full));
}

TEST(SessionTest, CursorMatchesExecuteOnFuzzerCorpus) {
  std::mt19937_64 rng(20260730);
  int compared = 0;
  for (int round = 0; round < 12; ++round) {
    Database db = RandomBagDatabase(rng, 4, 3, 2);
    Session sess(std::move(db));
    RandomQueryGen gen(rng);
    for (int i = 0; i < 6; ++i) {
      AlgPtr q = gen.Gen(3);
      for (EvalMode mode :
           {EvalMode::kSetNaive, EvalMode::kBagNaive, EvalMode::kSetSql}) {
        auto pq = sess.Prepare(q, mode);
        ASSERT_TRUE(pq.ok()) << pq.status().ToString() << "\n"
                             << q->ToString();
        auto rel = pq->Execute();
        ASSERT_TRUE(rel.ok()) << rel.status().ToString();
        auto cur = pq->OpenCursor();
        ASSERT_TRUE(cur.ok()) << cur.status().ToString();
        Relation acc = Drain(*cur);
        EXPECT_TRUE(acc.SameRows(*rel))
            << "cursor/materialised divergence on " << q->ToString()
            << "\ncursor:\n"
            << acc.ToString() << "\nmaterialised:\n"
            << rel->ToString();
        ++compared;
      }
    }
  }
  EXPECT_GE(compared, 200);
}

// --- EXPLAIN -----------------------------------------------------------------

TEST(SessionTest, ExplainExposesPlanOpsAndCacheStats) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare(
      "SELECT C.name FROM Payments P, Customers C WHERE P.cid = C.cid "
      "AND C.name = ?");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_GE(pq->CountPlanOps(PhysOp::kScanView), 2u);
  EXPECT_EQ(pq->CountPlanOps(PhysOp::kHashJoin), 1u);
  std::string text = pq->Explain();
  EXPECT_NE(text.find("params=1"), std::string::npos);
  EXPECT_NE(text.find("ScanView"), std::string::npos);
  EXPECT_NE(text.find("HashJoin=1"), std::string::npos);
  EXPECT_NE(text.find("misses=1"), std::string::npos) << text;
}

// --- SQL errors with positions ----------------------------------------------

TEST(SessionTest, PrepareErrorsCarryOffsetsAndSnippets) {
  Session sess(FigureOne(false));

  auto bad_col = sess.Prepare("SELECT nope FROM Orders");
  ASSERT_FALSE(bad_col.ok());
  EXPECT_NE(bad_col.status().message().find("at offset 7"), std::string::npos)
      << bad_col.status().ToString();
  EXPECT_NE(bad_col.status().message().find('^'), std::string::npos);

  auto bad_table = sess.Prepare("SELECT oid FROM Nope");
  ASSERT_FALSE(bad_table.ok());
  EXPECT_NE(bad_table.status().message().find("at offset 16"),
            std::string::npos)
      << bad_table.status().ToString();

  auto bad_where = sess.Prepare("SELECT oid FROM Orders WHERE nope = 1");
  ASSERT_FALSE(bad_where.ok());
  EXPECT_NE(bad_where.status().message().find("at offset 29"),
            std::string::npos)
      << bad_where.status().ToString();

  // Statuses without an offset pass through unchanged.
  Status plain = Status::InvalidArgument("no position here");
  EXPECT_EQ(AnnotateSqlError(plain, "SELECT 1").message(), "no position here");
}

TEST(SessionTest, CaretClampsAtEndOfInputAndTrailingWhitespace) {
  Session sess(FigureOne(false));

  // A parse error at EOF reports offset == sql.size(); with a trailing
  // newline the old renderer quoted the empty last line with the caret at
  // column 0. The caret must land under the last real token instead.
  for (const std::string& sql :
       {std::string("SELECT oid FROM Orders WHERE price >\n"),
        std::string("SELECT oid FROM Orders WHERE price >   "),
        std::string("SELECT oid FROM")}) {
    auto st = sess.Prepare(sql);
    ASSERT_FALSE(st.ok()) << sql;
    const std::string& msg = st.status().message();
    ASSERT_NE(msg.find('^'), std::string::npos) << msg;
    // The quoted snippet line is never empty ...
    EXPECT_EQ(msg.find("\n  \n"), std::string::npos) << msg;
    // ... and the caret column points inside the snippet, under its last
    // non-whitespace byte.
    size_t caret_line = msg.rfind("\n  ");
    size_t snip_start = msg.rfind("\n  ", caret_line - 1);
    ASSERT_NE(snip_start, std::string::npos) << msg;
    std::string snippet =
        msg.substr(snip_start + 3, caret_line - snip_start - 3);
    size_t caret_col = msg.size() - (caret_line + 3) - 1;
    ASSERT_LT(caret_col, snippet.size()) << msg;
    EXPECT_EQ(caret_col, snippet.find_last_not_of(" \t")) << msg;
  }

  // Direct unit check: an offset past the end clamps back onto 'B'.
  Status past = Status::InvalidArgument("boom at offset 9");
  std::string annotated = AnnotateSqlError(past, "AB\n").message();
  EXPECT_NE(annotated.find("\n  AB\n   ^"), std::string::npos) << annotated;
}

// --- Snapshots, staleness and the result cache -------------------------------

TEST(SessionTest, ExecuteAfterDropOrSchemaChangeIsFailedPrecondition) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > 10");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_TRUE(pq->Execute().ok());

  // Dropping a scanned relation turns the prepared query stale.
  ASSERT_TRUE(sess.Drop("Orders").ok());
  auto gone = pq->Execute();
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(gone.status().message().find("Orders"), std::string::npos);
  EXPECT_NE(gone.status().message().find("re-prepare"), std::string::npos);
  EXPECT_EQ(pq->OpenCursor().status().code(),
            StatusCode::kFailedPrecondition);

  // Re-creating it with a different schema is just as stale ...
  Relation other({"oid", "total"});
  other.Add({Value::String("o1"), Value::Int(50)});
  sess.Put("Orders", std::move(other));
  EXPECT_EQ(pq->Execute().status().code(), StatusCode::kFailedPrecondition);

  // ... but restoring the original schema makes it executable again (new
  // data, same shape).
  Relation restored({"oid", "title", "price"});
  restored.Add({Value::String("o9"), Value::String("New"), Value::Int(99)});
  sess.Put("Orders", std::move(restored));
  auto back = pq->Execute();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->Contains(Str("o9")));

  // Unrelated mutations never affect freshness.
  sess.Put("Unrelated", Relation({"z"}));
  EXPECT_TRUE(pq->Execute().ok());
}

TEST(SessionTest, RepeatExecuteHitsResultCacheUntilDataChanges) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  auto r1 = pq->Execute({Value::Int(30)});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 0u);

  // Same bindings, unchanged data: a hit with the identical relation.
  auto r2 = pq->Execute({Value::Int(30)});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 1u);
  EXPECT_TRUE(r1->SameRows(*r2));
  EXPECT_EQ(r1->attrs(), r2->attrs());

  // Different bindings key separately.
  ASSERT_TRUE(pq->Execute({Value::Int(0)}).ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 1u);
  EXPECT_EQ(sess.stats().result_cache.size, 2u);

  // A mutation of the scanned relation misses (fresh version stamps) and
  // eagerly dropped the dependent entries.
  Relation orders({"oid", "title", "price"});
  orders.Add({Value::String("o1"), Value::String("Big Data"), Value::Int(100)});
  sess.Put("Orders", std::move(orders));
  EXPECT_GE(sess.stats().result_cache.invalidations, 2u);
  auto r3 = pq->Execute({Value::Int(30)});
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 1u);
  EXPECT_TRUE(r3->Contains(Str("o1")));
  EXPECT_FALSE(r3->SameRows(*r1));

  // Mutating a relation the query does not scan leaves its entries hot.
  sess.Put("Payments", Relation({"cid", "oid"}));
  EXPECT_TRUE(pq->Execute({Value::Int(30)}).ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 2u);

  // The toggle bypasses the cache without changing results.
  EvalOptions off = sess.options();
  off.use_result_cache = false;
  sess.set_options(off);
  auto r4 = pq->Execute({Value::Int(30)});
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(r4->SameRows(*r3));
  EXPECT_EQ(sess.stats().result_cache.hits, 2u);

  sess.ClearResultCache();
  EXPECT_EQ(sess.stats().result_cache.size, 0u);
}

// A row-level Mutate batch upgrades cached results of maintainable plans
// in place — the entry survives the commit (counted as `maintained`, not
// `invalidations`) and the next Execute is a hit carrying exactly the
// post-commit rows.
TEST(SessionTest, MutateMaintainsCachedResultsIncrementally) {
  Session sess;
  Relation r({"a", "k"});
  for (int i = 0; i < 100; ++i) r.Add({Value::Int(i), Value::Int(i % 10)});
  Relation s({"k2", "b"});
  for (int i = 0; i < 10; ++i) s.Add({Value::Int(i), Value::Int(1000 + i)});
  sess.Put("R", std::move(r));
  sess.Put("S", std::move(s));
  auto pq = sess.Prepare("SELECT a, b FROM R, S WHERE k = k2 AND a > 5");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_TRUE(pq->Execute().ok());

  ASSERT_TRUE(sess.Mutate([](Database::Txn& txn) {
                    return txn.Insert("R", {Value::Int(777), Value::Int(3)});
                  })
                  .ok());
  SessionStats stats = sess.stats();
  EXPECT_EQ(stats.result_cache.maintained, 1u);
  EXPECT_EQ(stats.result_cache.invalidations, 0u);

  auto warm = pq->Execute();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 1u) << "maintained entry missed";
  EXPECT_TRUE(warm->Contains(Tuple{Value::Int(777), Value::Int(1003)}));

  // The maintained rows must be bit-identical to a cold recompute.
  EvalOptions off = sess.options();
  off.use_result_cache = false;
  sess.set_options(off);
  auto cold = pq->Execute();
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(cold->SameRows(*warm));
  EXPECT_EQ(cold->attrs(), warm->attrs());
}

// Bag-mode maintenance handles deletions exactly (signed deltas); set
// modes fall back to invalidation on a removal (insert-only maintenance)
// — both must agree with a cold recompute.
TEST(SessionTest, MutateRemoveMaintainsBagsAndInvalidatesSets) {
  for (EvalMode mode : {EvalMode::kBagNaive, EvalMode::kSetNaive}) {
    SCOPED_TRACE(static_cast<int>(mode));
    Session sess;
    Relation r({"x"});
    r.Add({Value::Int(1)}, 2);
    r.Add({Value::Int(2)});
    r.Add({Value::Int(3)});
    sess.Put("R", std::move(r));
    auto pq = sess.Prepare("SELECT x FROM R WHERE x < 3", mode);
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();
    ASSERT_TRUE(pq->Execute().ok());

    // Removing the last occurrence of 2: exact under bags, a set-level
    // deletion (post count 0) under sets → invalidation fallback.
    ASSERT_TRUE(sess.Mutate([](Database::Txn& txn) {
                      return txn.Remove("R", {Value::Int(2)});
                    })
                    .ok());
    SessionStats stats = sess.stats();
    if (mode == EvalMode::kBagNaive) {
      EXPECT_EQ(stats.result_cache.maintained, 1u);
      EXPECT_EQ(stats.result_cache.invalidations, 0u);
    } else {
      EXPECT_EQ(stats.result_cache.maintained, 0u);
      EXPECT_EQ(stats.result_cache.invalidations, 1u);
    }
    auto got = pq->Execute();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->Count(Tuple{Value::Int(1)}),
              mode == EvalMode::kBagNaive ? 2u : 1u);
    EXPECT_EQ(got->Count(Tuple{Value::Int(2)}), 0u);

    EvalOptions off = sess.options();
    off.use_result_cache = false;
    sess.set_options(off);
    auto cold = pq->Execute();
    ASSERT_TRUE(cold.ok());
    EXPECT_TRUE(cold->SameRows(*got));
  }
}

// The maintenance toggle: with use_result_maintenance off, a row-level
// commit invalidates instead of maintaining (and results stay correct).
TEST(SessionTest, MaintenanceToggleFallsBackToInvalidation) {
  EvalOptions opts;
  opts.use_result_maintenance = false;
  Session sess(Database{}, opts);
  Relation r({"x"});
  r.Add({Value::Int(1)});
  sess.Put("R", std::move(r));
  auto pq = sess.Prepare("SELECT x FROM R");
  ASSERT_TRUE(pq.ok());
  ASSERT_TRUE(pq->Execute().ok());
  ASSERT_TRUE(sess.Mutate([](Database::Txn& txn) {
                    return txn.Insert("R", {Value::Int(2)});
                  })
                  .ok());
  SessionStats stats = sess.stats();
  EXPECT_EQ(stats.result_cache.maintained, 0u);
  EXPECT_EQ(stats.result_cache.invalidations, 1u);
  auto got = pq->Execute();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->Contains(Tuple{Value::Int(2)}));
}

// Put of a relation identical to the current one is a no-op: the version
// stamp keeps, cached results survive, nothing is invalidated.
TEST(SessionTest, PutOfIdenticalRelationKeepsCacheAndVersion) {
  Session sess;
  Relation r({"x"});
  r.Add({Value::Int(1)});
  Relation copy = r;
  sess.Put("R", std::move(r));
  const uint64_t ver = sess.db().Version("R");
  auto pq = sess.Prepare("SELECT x FROM R");
  ASSERT_TRUE(pq.ok());
  ASSERT_TRUE(pq->Execute().ok());
  ASSERT_TRUE(pq->Execute().ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 1u);

  sess.Put("R", std::move(copy));  // identical contents: no-op
  EXPECT_EQ(sess.db().Version("R"), ver);
  EXPECT_EQ(sess.stats().result_cache.invalidations, 0u);
  ASSERT_TRUE(pq->Execute().ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 2u) << "entry must stay hot";

  // Different contents still bump + invalidate.
  Relation other({"x"});
  other.Add({Value::Int(2)});
  sess.Put("R", std::move(other));
  EXPECT_NE(sess.db().Version("R"), ver);
  EXPECT_GE(sess.stats().result_cache.invalidations, 1u);
  auto got = pq->Execute();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->Contains(Tuple{Value::Int(2)}));
}

// The late-insert guard closes the invalidate-then-reinsert window: an
// insert whose dependency stamps predate the latest invalidation floor
// for that relation is refused (the result was computed against a state
// the sweep already declared dead).
TEST(SessionTest, ResultCacheRefusesInsertsBehindTheInvalidationFloor) {
  ResultCache cache;
  auto stale = std::make_shared<Relation>(std::vector<std::string>{"x"});
  cache.InvalidateRelation("R", /*floor=*/10);
  cache.Insert("h", stale, {{"R", 9}}, /*uses_dom=*/false, /*epoch=*/0,
               /*maintainable=*/false, nullptr);
  EXPECT_EQ(cache.stats().late_drops, 1u);
  EXPECT_EQ(cache.stats().size, 0u);
  // At or above the floor the insert lands.
  cache.Insert("h", stale, {{"R", 10}}, false, 0, false, nullptr);
  EXPECT_EQ(cache.stats().size, 1u);
  // Dom-bearing entries are floored by epoch: Put/Drop sweeps cover "*".
  cache.Insert("g", stale, {}, /*uses_dom=*/true, /*epoch=*/9, false,
               nullptr);
  EXPECT_EQ(cache.stats().late_drops, 2u);
}

TEST(SessionTest, MutateCommitsAtomicBatchesAndInvalidatesExactly) {
  Session sess(FigureOne(false));
  auto orders = sess.Prepare("SELECT oid FROM Orders");
  auto customers = sess.Prepare("SELECT name FROM Customers");
  ASSERT_TRUE(orders.ok() && customers.ok());
  ASSERT_TRUE(orders->Execute().ok());
  ASSERT_TRUE(customers->Execute().ok());
  ASSERT_TRUE(orders->Execute().ok());  // both cached now
  ASSERT_TRUE(customers->Execute().ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 2u);

  // One batch touching Orders only: Customers entries stay hot.
  Status st = sess.Mutate([](Database::Txn& txn) {
    Relation r({"oid", "title", "price"});
    r.Add({Value::String("o7"), Value::String("Graphs"), Value::Int(7)});
    txn.Put("Orders", std::move(r));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto after = orders->Execute();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->Contains(Str("o7")));
  ASSERT_TRUE(customers->Execute().ok());
  EXPECT_EQ(sess.stats().result_cache.hits, 3u) << "Customers stayed cached";

  // A failing mutator discards the whole staged batch.
  Status fail = sess.Mutate([](Database::Txn& txn) {
    txn.Put("Orders", Relation({"nope"}));
    return Status::InvalidArgument("abort");
  });
  EXPECT_EQ(fail.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(orders->Execute().ok()) << "aborted batch left schema intact";
}

TEST(SessionTest, CursorPinsItsSnapshotAcrossCommits) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders");
  ASSERT_TRUE(pq.ok());
  auto cur = pq->OpenCursor();
  ASSERT_TRUE(cur.ok());

  // Drop the relation under the open cursor; the pinned snapshot keeps
  // the borrowed rows alive and the drain sees the pre-drop version.
  ASSERT_TRUE(sess.Drop("Orders").ok());
  size_t rows = 0;
  while (cur->Next()) ++rows;
  EXPECT_EQ(rows, 3u);
}

// --- Certain-answer wrappers -------------------------------------------------

TEST(SessionTest, CertainWrappersBindParamsBeforeTranslation) {
  Session sess(FigureOne(true));
  // Unpaid orders with price ≠ ? (disequality keeps the query generic, so
  // the exact machinery accepts it): Q+ must stay sound under bindings.
  AlgPtr tmpl = NotInPredicate(
      Project(Select(Scan("Orders"), CNeqc("price", Value::Param(0))), {"oid"}),
      Rename(Project(Scan("Payments"), {"oid"}), {"poid"}), {"oid"}, {"poid"},
      CTrue());
  auto bound_lit = BindParams(tmpl, {Value::Int(40)});
  ASSERT_TRUE(bound_lit.ok());

  auto plus = sess.CertainPlus(tmpl, {Value::Int(40)});
  auto maybe = sess.CertainMaybe(tmpl, {Value::Int(40)});
  auto cert = sess.CertainWithNulls(tmpl, {Value::Int(40)});
  ASSERT_TRUE(plus.ok()) << plus.status().ToString();
  ASSERT_TRUE(maybe.ok() && cert.ok());

  auto plus_direct = EvalPlus(*bound_lit, sess.db());
  auto cert_direct = CertWithNulls(*bound_lit, sess.db());
  ASSERT_TRUE(plus_direct.ok() && cert_direct.ok());
  EXPECT_TRUE(plus->SameRows(*plus_direct));
  EXPECT_TRUE(cert->SameRows(*cert_direct));
  // Soundness/completeness sandwich on the bound query.
  for (const Tuple& t : plus->SortedTuples()) {
    EXPECT_TRUE(cert->Contains(t));
  }
  for (const Tuple& t : cert->SortedTuples()) {
    EXPECT_TRUE(maybe->Contains(t));
  }

  // Unbound or mistyped Certain* calls fail fast.
  EXPECT_FALSE(sess.CertainPlus(tmpl, {}).ok());
  EXPECT_FALSE(sess.CertainPlus(tmpl, {Value::Null(1)}).ok());
}

TEST(SessionTest, CEvalResolvesParamsAtInstantiation) {
  Database db = FigureOne(true);
  // (In)equality only: the [36] strategies have no order atoms.
  AlgPtr tmpl = Project(
      Select(Scan("Orders"), CEqc("price", Value::Param(0))), {"oid"});
  auto bound = BindParams(tmpl, {Value::Int(35)});
  ASSERT_TRUE(bound.ok());
  for (CStrategy s : {CStrategy::kEager, CStrategy::kSemiEager,
                      CStrategy::kLazy, CStrategy::kAware}) {
    auto with_params = CEvalCertain(tmpl, db, s, {Value::Int(35)});
    auto literal = CEvalCertain(*bound, db, s);
    ASSERT_TRUE(with_params.ok()) << with_params.status().ToString();
    ASSERT_TRUE(literal.ok());
    EXPECT_TRUE(with_params->SameRows(*literal)) << ToString(s);
  }
  // Unbound placeholders are an error, not a silent mis-evaluation.
  EXPECT_FALSE(CEvalCertain(tmpl, db, CStrategy::kEager).ok());
}

}  // namespace
}  // namespace incdb
