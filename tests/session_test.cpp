// Tests for the api/session.h facade: prepared parameterized queries
// amortising one compile over N bindings (asserted via the session plan
// cache stats), streaming cursors agreeing with materialised execution on
// the fuzzer corpus, concurrent Execute on one PreparedQuery, binding
// arity/type errors, EXPLAIN output and the caret-annotated SQL errors.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/session.h"
#include "approx/approx.h"
#include "ctables/ceval.h"
#include "sql/translate.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;
using testing_util::RandomBagDatabase;
using testing_util::RandomQueryGen;

Tuple Str(const std::string& s) { return Tuple{Value::String(s)}; }

// --- Prepared queries: one compile for N bindings ----------------------------

TEST(SessionTest, PrepareOnceExecuteManyCompilesOnce) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_EQ(pq->param_count(), 1u);

  // N distinct bindings share the single compiled template.
  const int kBindings = 25;
  for (int i = 0; i < kBindings; ++i) {
    auto r = pq->Execute({Value::Int(i * 5)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  SessionStats stats = sess.stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u) << "N bindings must cost 1 compile";
  EXPECT_EQ(stats.executes, static_cast<uint64_t>(kBindings));

  // Results are the binding's, not the template's.
  auto r30 = pq->Execute({Value::Int(30)});
  auto r40 = pq->Execute({Value::Int(40)});
  auto r99 = pq->Execute({Value::Int(99)});
  ASSERT_TRUE(r30.ok() && r40.ok() && r99.ok());
  EXPECT_EQ(r30->SortedTuples(), (std::vector<Tuple>{Str("o2"), Str("o3")}));
  EXPECT_EQ(r40->SortedTuples(), std::vector<Tuple>{Str("o3")});
  EXPECT_TRUE(r99->Empty());

  // Re-preparing the same text hits the same entry.
  for (int i = 0; i < 4; ++i) {
    auto again = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
    ASSERT_TRUE(again.ok());
  }
  stats = sess.stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.plan_cache.hits, 4u);
}

TEST(SessionTest, LiteralQueriesKeySeparatelyButParamsShare) {
  // The contrast the facade exists for: distinct literal constants compile
  // per constant; the parameterized shape compiles once.
  Session sess(FigureOne(false));
  ASSERT_TRUE(sess.Execute("SELECT oid FROM Orders WHERE price > 30").ok());
  ASSERT_TRUE(sess.Execute("SELECT oid FROM Orders WHERE price > 40").ok());
  EXPECT_EQ(sess.stats().plan_cache.misses, 2u);

  sess.ClearPlanCache();
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok());
  ASSERT_TRUE(pq->Execute({Value::Int(30)}).ok());
  ASSERT_TRUE(pq->Execute({Value::Int(40)}).ok());
  EXPECT_EQ(sess.stats().plan_cache.misses, 3u);  // one more, total
}

TEST(SessionTest, ParameterInSubqueryBindsThroughTranslation) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare(
      "SELECT oid FROM Orders WHERE oid NOT IN "
      "( SELECT oid FROM Payments WHERE cid = ? )");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_EQ(pq->param_count(), 1u);
  auto r1 = pq->Execute({Value::String("c1")});  // c1 paid o1
  auto r2 = pq->Execute({Value::String("c2")});  // c2 paid o2
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->SortedTuples(), (std::vector<Tuple>{Str("o2"), Str("o3")}));
  EXPECT_EQ(r2->SortedTuples(), (std::vector<Tuple>{Str("o1"), Str("o3")}));
  EXPECT_EQ(sess.stats().plan_cache.misses, 1u);
}

TEST(SessionTest, AlgebraPreparedParamsMatchLiteralQuery) {
  Session sess(FigureOne(true));
  AlgPtr tmpl = Project(
      Select(Scan("Orders"), CGtc("price", Value::Param(0))), {"oid"});
  AlgPtr lit =
      Project(Select(Scan("Orders"), CGtc("price", Value::Int(35))), {"oid"});
  for (EvalMode mode :
       {EvalMode::kSetNaive, EvalMode::kBagNaive, EvalMode::kSetSql}) {
    auto pq = sess.Prepare(tmpl, mode);
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();
    auto bound = pq->Execute({Value::Int(35)});
    auto direct = sess.Prepare(lit, mode);
    ASSERT_TRUE(bound.ok() && direct.ok());
    auto expect = direct->Execute();
    ASSERT_TRUE(expect.ok());
    EXPECT_TRUE(bound->SameRows(*expect));
  }
}

// --- Binding validation ------------------------------------------------------

TEST(SessionTest, BindingArityAndTypeMismatchErrors) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok());

  auto none = pq->Execute({});
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(none.status().message().find("1 parameter"), std::string::npos);

  auto extra = pq->Execute({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kInvalidArgument);

  // Type mismatches: nulls and parameters are not constants.
  auto null_bind = pq->Execute({Value::Null(7)});
  EXPECT_FALSE(null_bind.ok());
  EXPECT_NE(null_bind.status().message().find("constant"), std::string::npos);
  auto param_bind = pq->Execute({Value::Param(0)});
  EXPECT_FALSE(param_bind.ok());

  // A parameter-free query rejects spurious bindings.
  auto plain = sess.Prepare("SELECT oid FROM Orders");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->param_count(), 0u);
  EXPECT_FALSE(plain->Execute({Value::Int(1)}).ok());
}

TEST(SessionTest, RawExecuteRejectsUnboundTemplates) {
  // The low-level plan API refuses to run a template: parameters must be
  // bound (the predicate closures would silently compare placeholders).
  Database db = FigureOne(false);
  AlgPtr tmpl = Select(Scan("Orders"), CEqc("price", Value::Param(0)));
  auto plan = Compile(tmpl, EvalMode::kSetNaive, EvalOptions{}, db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->param_count, 1u);
  auto run = Execute(*plan, db);
  EXPECT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("unbound parameter"),
            std::string::npos);

  auto bound = BindPlanParams(*plan, {Value::Int(35)});
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ((*bound)->param_count, 0u);
  auto ok = Execute(*bound, db);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->DistinctSize(), 1u);
}

// --- Concurrency -------------------------------------------------------------

TEST(SessionTest, ConcurrentExecuteOnOnePreparedQuery) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok());

  // Expected distinct-result sizes per threshold (prices: 30, 35, 50).
  const std::vector<std::pair<int64_t, size_t>> cases = {
      {0, 3}, {30, 2}, {35, 1}, {40, 1}, {50, 0}, {100, 0}};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const auto& [threshold, expected] = cases[(t + i) % cases.size()];
        auto r = pq->Execute({Value::Int(threshold)});
        if (!r.ok() || r->DistinctSize() != expected) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sess.stats().plan_cache.misses, 1u);
  EXPECT_EQ(sess.stats().executes, 400u);
}

// --- Cursors -----------------------------------------------------------------

/// Accumulates every delivery of `cur` into a relation (the cursor
/// contract: this must equal the materialised execution as a bag).
Relation Drain(Cursor& cur) {
  Relation acc(cur.attrs());
  while (cur.Next()) {
    Status st = acc.Insert(cur.row(), cur.count());
    EXPECT_TRUE(st.ok());
  }
  return acc;
}

TEST(SessionTest, CursorStreamsFilterChainsWithoutMaterialising) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > ?");
  ASSERT_TRUE(pq.ok());
  auto cur = pq->OpenCursor({Value::Int(30)});
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  EXPECT_TRUE(cur->streaming());
  EXPECT_EQ(cur->attrs(), std::vector<std::string>{"oid"});

  // Exists-style consumption: the first pull suffices.
  ASSERT_TRUE(cur->Next());
  EXPECT_EQ(cur->count(), 1u);

  auto cur2 = pq->OpenCursor({Value::Int(30)});
  ASSERT_TRUE(cur2.ok());
  Relation acc = Drain(*cur2);
  auto full = pq->Execute({Value::Int(30)});
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(acc.SameRows(*full));
}

TEST(SessionTest, CursorMatchesExecuteOnFuzzerCorpus) {
  std::mt19937_64 rng(20260730);
  int compared = 0;
  for (int round = 0; round < 12; ++round) {
    Database db = RandomBagDatabase(rng, 4, 3, 2);
    Session sess(std::move(db));
    RandomQueryGen gen(rng);
    for (int i = 0; i < 6; ++i) {
      AlgPtr q = gen.Gen(3);
      for (EvalMode mode :
           {EvalMode::kSetNaive, EvalMode::kBagNaive, EvalMode::kSetSql}) {
        auto pq = sess.Prepare(q, mode);
        ASSERT_TRUE(pq.ok()) << pq.status().ToString() << "\n"
                             << q->ToString();
        auto rel = pq->Execute();
        ASSERT_TRUE(rel.ok()) << rel.status().ToString();
        auto cur = pq->OpenCursor();
        ASSERT_TRUE(cur.ok()) << cur.status().ToString();
        Relation acc = Drain(*cur);
        EXPECT_TRUE(acc.SameRows(*rel))
            << "cursor/materialised divergence on " << q->ToString()
            << "\ncursor:\n"
            << acc.ToString() << "\nmaterialised:\n"
            << rel->ToString();
        ++compared;
      }
    }
  }
  EXPECT_GE(compared, 200);
}

// --- EXPLAIN -----------------------------------------------------------------

TEST(SessionTest, ExplainExposesPlanOpsAndCacheStats) {
  Session sess(FigureOne(false));
  auto pq = sess.Prepare(
      "SELECT C.name FROM Payments P, Customers C WHERE P.cid = C.cid "
      "AND C.name = ?");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_GE(pq->CountPlanOps(PhysOp::kScanView), 2u);
  EXPECT_EQ(pq->CountPlanOps(PhysOp::kHashJoin), 1u);
  std::string text = pq->Explain();
  EXPECT_NE(text.find("params=1"), std::string::npos);
  EXPECT_NE(text.find("ScanView"), std::string::npos);
  EXPECT_NE(text.find("HashJoin=1"), std::string::npos);
  EXPECT_NE(text.find("misses=1"), std::string::npos) << text;
}

// --- SQL errors with positions ----------------------------------------------

TEST(SessionTest, PrepareErrorsCarryOffsetsAndSnippets) {
  Session sess(FigureOne(false));

  auto bad_col = sess.Prepare("SELECT nope FROM Orders");
  ASSERT_FALSE(bad_col.ok());
  EXPECT_NE(bad_col.status().message().find("at offset 7"), std::string::npos)
      << bad_col.status().ToString();
  EXPECT_NE(bad_col.status().message().find('^'), std::string::npos);

  auto bad_table = sess.Prepare("SELECT oid FROM Nope");
  ASSERT_FALSE(bad_table.ok());
  EXPECT_NE(bad_table.status().message().find("at offset 16"),
            std::string::npos)
      << bad_table.status().ToString();

  auto bad_where = sess.Prepare("SELECT oid FROM Orders WHERE nope = 1");
  ASSERT_FALSE(bad_where.ok());
  EXPECT_NE(bad_where.status().message().find("at offset 29"),
            std::string::npos)
      << bad_where.status().ToString();

  // Statuses without an offset pass through unchanged.
  Status plain = Status::InvalidArgument("no position here");
  EXPECT_EQ(AnnotateSqlError(plain, "SELECT 1").message(), "no position here");
}

// --- Certain-answer wrappers -------------------------------------------------

TEST(SessionTest, CertainWrappersBindParamsBeforeTranslation) {
  Session sess(FigureOne(true));
  // Unpaid orders with price ≠ ? (disequality keeps the query generic, so
  // the exact machinery accepts it): Q+ must stay sound under bindings.
  AlgPtr tmpl = NotInPredicate(
      Project(Select(Scan("Orders"), CNeqc("price", Value::Param(0))), {"oid"}),
      Rename(Project(Scan("Payments"), {"oid"}), {"poid"}), {"oid"}, {"poid"},
      CTrue());
  auto bound_lit = BindParams(tmpl, {Value::Int(40)});
  ASSERT_TRUE(bound_lit.ok());

  auto plus = sess.CertainPlus(tmpl, {Value::Int(40)});
  auto maybe = sess.CertainMaybe(tmpl, {Value::Int(40)});
  auto cert = sess.CertainWithNulls(tmpl, {Value::Int(40)});
  ASSERT_TRUE(plus.ok()) << plus.status().ToString();
  ASSERT_TRUE(maybe.ok() && cert.ok());

  auto plus_direct = EvalPlus(*bound_lit, sess.db());
  auto cert_direct = CertWithNulls(*bound_lit, sess.db());
  ASSERT_TRUE(plus_direct.ok() && cert_direct.ok());
  EXPECT_TRUE(plus->SameRows(*plus_direct));
  EXPECT_TRUE(cert->SameRows(*cert_direct));
  // Soundness/completeness sandwich on the bound query.
  for (const Tuple& t : plus->SortedTuples()) {
    EXPECT_TRUE(cert->Contains(t));
  }
  for (const Tuple& t : cert->SortedTuples()) {
    EXPECT_TRUE(maybe->Contains(t));
  }

  // Unbound or mistyped Certain* calls fail fast.
  EXPECT_FALSE(sess.CertainPlus(tmpl, {}).ok());
  EXPECT_FALSE(sess.CertainPlus(tmpl, {Value::Null(1)}).ok());
}

TEST(SessionTest, CEvalResolvesParamsAtInstantiation) {
  Database db = FigureOne(true);
  // (In)equality only: the [36] strategies have no order atoms.
  AlgPtr tmpl = Project(
      Select(Scan("Orders"), CEqc("price", Value::Param(0))), {"oid"});
  auto bound = BindParams(tmpl, {Value::Int(35)});
  ASSERT_TRUE(bound.ok());
  for (CStrategy s : {CStrategy::kEager, CStrategy::kSemiEager,
                      CStrategy::kLazy, CStrategy::kAware}) {
    auto with_params = CEvalCertain(tmpl, db, s, {Value::Int(35)});
    auto literal = CEvalCertain(*bound, db, s);
    ASSERT_TRUE(with_params.ok()) << with_params.status().ToString();
    ASSERT_TRUE(literal.ok());
    EXPECT_TRUE(with_params->SameRows(*literal)) << ToString(s);
  }
  // Unbound placeholders are an error, not a silent mis-evaluation.
  EXPECT_FALSE(CEvalCertain(tmpl, db, CStrategy::kEager).ok());
}

}  // namespace
}  // namespace incdb
