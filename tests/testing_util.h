#ifndef INCDB_TESTS_TESTING_UTIL_H_
#define INCDB_TESTS_TESTING_UTIL_H_

/// Shared helpers for property-style tests: the paper-running example
/// (Figure 1), seeded random databases, the enumerated query zoo, and the
/// seeded structurally-random query generator behind the differential
/// fuzzer (tests/fuzz_diff_test.cpp).

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "algebra/builder.h"
#include "core/database.h"

namespace incdb {
namespace testing_util {

/// Integral environment knob: unset or empty → `fallback`. Shared by the
/// differential fuzzer's INCDB_FUZZ_* knobs (see tests/fuzz_diff_test.cpp
/// and BUILDING.md "Differential fuzzer").
inline uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                      : fallback;
}

/// CI knob for the vectorized executor: INCDB_FUZZ_BATCH=N forces
/// EvalOptions::batch_size = N on every fuzz configuration (the sanitizer
/// job sets 1024 so the whole toggle matrix runs batched under
/// ASan+UBSan). 0 / unset keeps each configuration's own batch size.
inline uint64_t FuzzBatchOverride() { return EnvOr("INCDB_FUZZ_BATCH", 0); }

/// The Orders / Payments / Customers database of paper Figure 1.
/// With `with_null`, the oid of Payments' second tuple is ⊥1 (the paper's
/// single-NULL modification).
inline Database FigureOne(bool with_null) {
  Database db;
  Relation orders({"oid", "title", "price"});
  orders.Add({Value::String("o1"), Value::String("Big Data"), Value::Int(30)});
  orders.Add({Value::String("o2"), Value::String("SQL"), Value::Int(35)});
  orders.Add({Value::String("o3"), Value::String("Logic"), Value::Int(50)});
  Relation payments({"cid", "oid"});
  payments.Add({Value::String("c1"), Value::String("o1")});
  if (with_null) {
    payments.Add({Value::String("c2"), Value::Null(1)});
  } else {
    payments.Add({Value::String("c2"), Value::String("o2")});
  }
  Relation customers({"cid", "name"});
  customers.Add({Value::String("c1"), Value::String("John")});
  customers.Add({Value::String("c2"), Value::String("Mary")});
  db.Put("Orders", std::move(orders));
  db.Put("Payments", std::move(payments));
  db.Put("Customers", std::move(customers));
  return db;
}

/// Random database over two binary relations R, S and a unary T, with
/// values from a small constant pool plus repeated marked nulls — small
/// enough for brute-force certain answers.
inline Database RandomDatabase(std::mt19937_64& rng, size_t tuples_per_rel = 4,
                               int n_constants = 3, int n_nulls = 2) {
  auto value = [&]() -> Value {
    std::uniform_int_distribution<int> pick(0, n_constants + n_nulls - 1);
    int v = pick(rng);
    if (v < n_constants) return Value::Int(v);
    return Value::Null(static_cast<uint64_t>(v - n_constants));
  };
  Database db;
  for (const char* name : {"R", "S"}) {
    Relation rel({std::string(name) + "_a", std::string(name) + "_b"});
    for (size_t i = 0; i < tuples_per_rel; ++i) {
      rel.Add({value(), value()});
    }
    db.Put(name, rel.ToSet());
  }
  Relation t({"T_a"});
  for (size_t i = 0; i < tuples_per_rel; ++i) t.Add({value()});
  db.Put("T", t.ToSet());
  return db;
}

/// A fixed family of interesting core-grammar query shapes over the
/// RandomDatabase schema (random structural generation is hard to keep
/// schema-correct; an enumerated zoo combined with random databases gives
/// the same property-test coverage deterministically).
inline std::vector<AlgPtr> QueryZoo(bool include_negative = true) {
  std::vector<AlgPtr> zoo;
  AlgPtr r = Scan("R");
  AlgPtr s = Scan("S");
  AlgPtr t = Scan("T");

  // Positive / UCQ shapes.
  zoo.push_back(r);
  zoo.push_back(Project(r, {"R_a"}));
  zoo.push_back(Select(r, CEqc("R_a", Value::Int(0))));
  zoo.push_back(Select(r, CEq("R_a", "R_b")));
  zoo.push_back(Union(Project(r, {"R_a"}), Project(s, {"S_a"})));
  zoo.push_back(Project(
      Select(Product(r, s), CEq("R_b", "S_a")), {"R_a", "S_b"}));
  zoo.push_back(Union(r, Rename(s, {"R_a", "R_b"})));
  zoo.push_back(Project(Select(Product(Project(r, {"R_a"}),
                                       Rename(t, {"T_x"})),
                               CEq("R_a", "T_x")),
                        {"R_a"}));

  if (!include_negative) return zoo;

  // Negative / full-RA shapes.
  zoo.push_back(Diff(Project(r, {"R_a"}), Rename(t, {"R_a"})));
  zoo.push_back(Diff(r, s));
  zoo.push_back(Select(r, CNeqc("R_a", Value::Int(1))));
  zoo.push_back(Select(r, CNeq("R_a", "R_b")));
  zoo.push_back(Diff(Project(r, {"R_a"}),
                     Project(Select(s, CNeqc("S_b", Value::Int(0))),
                             {"S_a"})));
  zoo.push_back(
      Diff(Rename(t, {"x"}),
           Diff(Project(r, {"R_a"}), Project(s, {"S_a"}))));  // R−(S−T) shape
  zoo.push_back(Intersect(Project(r, {"R_a"}), Project(s, {"S_a"})));
  zoo.push_back(Select(Diff(r, s), COr(CEqc("R_a", Value::Int(0)),
                                       CNeqc("R_b", Value::Int(2)))));
  return zoo;
}

/// Like RandomDatabase but with bag multiplicities (1..3 occurrences per
/// generated tuple): the differential fuzzer needs non-set base relations
/// to exercise the set-collapsing scans and bag arithmetic.
inline Database RandomBagDatabase(std::mt19937_64& rng,
                                  size_t tuples_per_rel = 4,
                                  int n_constants = 3, int n_nulls = 2) {
  auto value = [&]() -> Value {
    std::uniform_int_distribution<int> pick(0, n_constants + n_nulls - 1);
    int v = pick(rng);
    if (v < n_constants) return Value::Int(v);
    return Value::Null(static_cast<uint64_t>(v - n_constants));
  };
  auto count = [&]() -> uint64_t { return 1 + rng() % 3; };
  Database db;
  for (const char* name : {"R", "S"}) {
    Relation rel({std::string(name) + "_a", std::string(name) + "_b"});
    for (size_t i = 0; i < tuples_per_rel; ++i) {
      rel.Add({value(), value()}, count());
    }
    db.Put(name, std::move(rel));
  }
  Relation t({"T_a"});
  for (size_t i = 0; i < tuples_per_rel; ++i) t.Add({value()}, count());
  db.Put("T", std::move(t));
  return db;
}

/// \brief Seeded random algebra queries over the RandomDatabase schema
/// (R(R_a,R_b), S(S_a,S_b), T(T_a)), schema-correct by construction.
///
/// Generated queries cover the core grammar plus every sugar operator the
/// three evaluators execute natively (join, semijoin/antijoin, [NOT] IN,
/// DISTINCT, ⋉⇑); ÷ and Dom are excluded (÷ is unsupported under EvalSql,
/// Dom blows up the reference walk). Arity agreement and ×-disjointness
/// are maintained structurally: same-arity operators narrow the wider side
/// with a projection, product-like operators rename their right input to
/// fresh attribute names. An estimated-output-size ledger steers the
/// generator away from product towers, keeping the quadratic reference
/// evaluation of every generated query cheap.
class RandomQueryGen {
 public:
  explicit RandomQueryGen(std::mt19937_64& rng, size_t leaf_rows = 4,
                          size_t max_est_rows = 800)
      : rng_(&rng), leaf_rows_(leaf_rows), cap_(max_est_rows) {}

  AlgPtr Gen(int depth) { return GenNode(depth).q; }

 private:
  struct Sub {
    AlgPtr q;
    std::vector<std::string> attrs;
    size_t est;  ///< Upper estimate of the output row count.
  };

  size_t Pick(size_t n) { return static_cast<size_t>((*rng_)() % n); }

  Value RandConst() { return Value::Int(static_cast<int64_t>(Pick(3))); }

  std::string FreshAttr() { return "f" + std::to_string(fresh_++); }

  CondPtr RandAtom(const std::vector<std::string>& attrs) {
    const std::string& a = attrs[Pick(attrs.size())];
    const std::string& b = attrs[Pick(attrs.size())];
    switch (Pick(8)) {
      case 0:
        return CEq(a, b);
      case 1:
        return CNeq(a, b);
      case 2:
        return CEqc(a, RandConst());
      case 3:
        return CNeqc(a, RandConst());
      case 4:
        return CIsConst(a);
      case 5:
        return CIsNull(a);
      case 6:
        return CLtc(a, RandConst());
      default:
        return CGec(a, RandConst());
    }
  }

  CondPtr RandCond(const std::vector<std::string>& attrs, int depth) {
    if (depth <= 0 || Pick(2) == 0) return RandAtom(attrs);
    CondPtr l = RandCond(attrs, depth - 1);
    CondPtr r = RandCond(attrs, depth - 1);
    return Pick(2) != 0 ? CAnd(std::move(l), std::move(r))
                        : COr(std::move(l), std::move(r));
  }

  Sub Leaf() {
    switch (Pick(3)) {
      case 0:
        return {Scan("R"), {"R_a", "R_b"}, leaf_rows_};
      case 1:
        return {Scan("S"), {"S_a", "S_b"}, leaf_rows_};
      default:
        return {Scan("T"), {"T_a"}, leaf_rows_};
    }
  }

  /// Renames every attribute to fresh names (×-disjointness).
  Sub Freshen(Sub s) {
    std::vector<std::string> names;
    names.reserve(s.attrs.size());
    for (size_t i = 0; i < s.attrs.size(); ++i) names.push_back(FreshAttr());
    return {Rename(std::move(s.q), names), names, s.est};
  }

  /// Projects down to the first `k` attributes (arity agreement).
  Sub Narrow(Sub s, size_t k) {
    if (s.attrs.size() <= k) return s;
    std::vector<std::string> keep(s.attrs.begin(),
                                  s.attrs.begin() + static_cast<long>(k));
    return {Project(std::move(s.q), keep), keep, s.est};
  }

  Sub GenNode(int depth) {
    if (depth <= 0) return Leaf();
    switch (Pick(12)) {
      case 0: {  // σ
        Sub in = GenNode(depth - 1);
        CondPtr c = RandCond(in.attrs, 1);
        return {Select(in.q, std::move(c)), in.attrs, in.est};
      }
      case 1: {  // π over a kept-order subset
        Sub in = GenNode(depth - 1);
        std::vector<std::string> keep;
        for (const std::string& a : in.attrs) {
          if (Pick(2) != 0) keep.push_back(a);
        }
        if (keep.empty()) keep.push_back(in.attrs[Pick(in.attrs.size())]);
        return {Project(in.q, keep), keep, in.est};
      }
      case 2:  // ρ
        return Freshen(GenNode(depth - 1));
      case 3: {  // DISTINCT
        Sub in = GenNode(depth - 1);
        return {Distinct(in.q), in.attrs, in.est};
      }
      case 4:
      case 5: {  // same-arity binaries: ∪ − ∩ ⋉⇑
        Sub l = GenNode(depth - 1);
        Sub r = GenNode(depth - 1);
        size_t k = std::min(l.attrs.size(), r.attrs.size());
        l = Narrow(std::move(l), k);
        r = Narrow(std::move(r), k);
        switch (Pick(4)) {
          case 0:
            return {Union(l.q, r.q), l.attrs, l.est + r.est};
          case 1:
            return {Diff(l.q, r.q), l.attrs, l.est};
          case 2:
            return {Intersect(l.q, r.q), l.attrs, l.est};
          default:
            return {AntijoinUnify(l.q, r.q), l.attrs, l.est};
        }
      }
      case 6:
      case 7: {  // × / ⋈θ
        Sub l = GenNode(depth - 1);
        Sub r = Freshen(GenNode(depth - 1));
        if (l.est * r.est > cap_) {  // keep the reference walk bounded
          return {Select(l.q, RandCond(l.attrs, 0)), l.attrs, l.est};
        }
        std::vector<std::string> joint = l.attrs;
        joint.insert(joint.end(), r.attrs.begin(), r.attrs.end());
        size_t est = l.est * r.est;
        if (Pick(2) != 0) return {Product(l.q, r.q), joint, est};
        return {Join(l.q, r.q, RandCond(joint, 1)), joint, est};
      }
      case 8: {  // ⋉θ / ⊳θ
        Sub l = GenNode(depth - 1);
        Sub r = Freshen(GenNode(depth - 1));
        std::vector<std::string> joint = l.attrs;
        joint.insert(joint.end(), r.attrs.begin(), r.attrs.end());
        CondPtr c = RandCond(joint, 1);
        return {Pick(2) != 0 ? Semijoin(l.q, r.q, std::move(c))
                             : Antijoin(l.q, r.q, std::move(c)),
                l.attrs, l.est};
      }
      case 9:
      case 10: {  // x̄ [NOT] IN (r WHERE θ), sometimes correlated
        Sub l = GenNode(depth - 1);
        Sub r = Freshen(GenNode(depth - 1));
        size_t k = 1 + Pick(std::min(l.attrs.size(), r.attrs.size()));
        std::vector<std::string> lcols(l.attrs.begin(),
                                       l.attrs.begin() + static_cast<long>(k));
        std::vector<std::string> rcols(r.attrs.begin(),
                                       r.attrs.begin() + static_cast<long>(k));
        CondPtr c = CTrue();
        if (Pick(2) != 0) {
          std::vector<std::string> joint = l.attrs;
          joint.insert(joint.end(), r.attrs.begin(), r.attrs.end());
          c = RandCond(joint, 0);
        }
        return {Pick(2) != 0
                    ? InPredicate(l.q, r.q, lcols, rcols, std::move(c))
                    : NotInPredicate(l.q, r.q, lcols, rcols, std::move(c)),
                l.attrs, l.est};
      }
      default:  // spend the depth without a new operator
        return GenNode(depth - 1);
    }
  }

  std::mt19937_64* rng_;
  size_t leaf_rows_;
  size_t cap_;
  int fresh_ = 0;
};

}  // namespace testing_util
}  // namespace incdb

#endif  // INCDB_TESTS_TESTING_UTIL_H_
