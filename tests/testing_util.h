#ifndef INCDB_TESTS_TESTING_UTIL_H_
#define INCDB_TESTS_TESTING_UTIL_H_

/// Shared helpers for property-style tests: the paper-running example
/// (Figure 1), seeded random databases and random core-grammar queries.

#include <random>
#include <vector>

#include "algebra/builder.h"
#include "core/database.h"

namespace incdb {
namespace testing_util {

/// The Orders / Payments / Customers database of paper Figure 1.
/// With `with_null`, the oid of Payments' second tuple is ⊥1 (the paper's
/// single-NULL modification).
inline Database FigureOne(bool with_null) {
  Database db;
  Relation orders({"oid", "title", "price"});
  orders.Add({Value::String("o1"), Value::String("Big Data"), Value::Int(30)});
  orders.Add({Value::String("o2"), Value::String("SQL"), Value::Int(35)});
  orders.Add({Value::String("o3"), Value::String("Logic"), Value::Int(50)});
  Relation payments({"cid", "oid"});
  payments.Add({Value::String("c1"), Value::String("o1")});
  if (with_null) {
    payments.Add({Value::String("c2"), Value::Null(1)});
  } else {
    payments.Add({Value::String("c2"), Value::String("o2")});
  }
  Relation customers({"cid", "name"});
  customers.Add({Value::String("c1"), Value::String("John")});
  customers.Add({Value::String("c2"), Value::String("Mary")});
  db.Put("Orders", std::move(orders));
  db.Put("Payments", std::move(payments));
  db.Put("Customers", std::move(customers));
  return db;
}

/// Random database over two binary relations R, S and a unary T, with
/// values from a small constant pool plus repeated marked nulls — small
/// enough for brute-force certain answers.
inline Database RandomDatabase(std::mt19937_64& rng, size_t tuples_per_rel = 4,
                               int n_constants = 3, int n_nulls = 2) {
  auto value = [&]() -> Value {
    std::uniform_int_distribution<int> pick(0, n_constants + n_nulls - 1);
    int v = pick(rng);
    if (v < n_constants) return Value::Int(v);
    return Value::Null(static_cast<uint64_t>(v - n_constants));
  };
  Database db;
  for (const char* name : {"R", "S"}) {
    Relation rel({std::string(name) + "_a", std::string(name) + "_b"});
    for (size_t i = 0; i < tuples_per_rel; ++i) {
      rel.Add({value(), value()});
    }
    db.Put(name, rel.ToSet());
  }
  Relation t({"T_a"});
  for (size_t i = 0; i < tuples_per_rel; ++i) t.Add({value()});
  db.Put("T", t.ToSet());
  return db;
}

/// A fixed family of interesting core-grammar query shapes over the
/// RandomDatabase schema (random structural generation is hard to keep
/// schema-correct; an enumerated zoo combined with random databases gives
/// the same property-test coverage deterministically).
inline std::vector<AlgPtr> QueryZoo(bool include_negative = true) {
  std::vector<AlgPtr> zoo;
  AlgPtr r = Scan("R");
  AlgPtr s = Scan("S");
  AlgPtr t = Scan("T");

  // Positive / UCQ shapes.
  zoo.push_back(r);
  zoo.push_back(Project(r, {"R_a"}));
  zoo.push_back(Select(r, CEqc("R_a", Value::Int(0))));
  zoo.push_back(Select(r, CEq("R_a", "R_b")));
  zoo.push_back(Union(Project(r, {"R_a"}), Project(s, {"S_a"})));
  zoo.push_back(Project(
      Select(Product(r, s), CEq("R_b", "S_a")), {"R_a", "S_b"}));
  zoo.push_back(Union(r, Rename(s, {"R_a", "R_b"})));
  zoo.push_back(Project(Select(Product(Project(r, {"R_a"}),
                                       Rename(t, {"T_x"})),
                               CEq("R_a", "T_x")),
                        {"R_a"}));

  if (!include_negative) return zoo;

  // Negative / full-RA shapes.
  zoo.push_back(Diff(Project(r, {"R_a"}), Rename(t, {"R_a"})));
  zoo.push_back(Diff(r, s));
  zoo.push_back(Select(r, CNeqc("R_a", Value::Int(1))));
  zoo.push_back(Select(r, CNeq("R_a", "R_b")));
  zoo.push_back(Diff(Project(r, {"R_a"}),
                     Project(Select(s, CNeqc("S_b", Value::Int(0))),
                             {"S_a"})));
  zoo.push_back(
      Diff(Rename(t, {"x"}),
           Diff(Project(r, {"R_a"}), Project(s, {"S_a"}))));  // R−(S−T) shape
  zoo.push_back(Intersect(Project(r, {"R_a"}), Project(s, {"S_a"})));
  zoo.push_back(Select(Diff(r, s), COr(CEqc("R_a", Value::Int(0)),
                                       CNeqc("R_b", Value::Int(2)))));
  return zoo;
}

}  // namespace testing_util
}  // namespace incdb

#endif  // INCDB_TESTS_TESTING_UTIL_H_
