// Tests for src/ctables: condition satisfiability/validity/grounding, the
// conditional evaluation of algebra, and the four strategies of [36]
// (paper §4.2, Theorem 4.9).

#include <gtest/gtest.h>

#include "approx/approx.h"
#include "certain/certain.h"
#include "ctables/ceval.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

const Value kC1 = Value::Int(1);
const Value kC2 = Value::Int(2);
const Value kN1 = Value::Null(1);
const Value kN2 = Value::Null(2);

// --- Smart constructors -------------------------------------------------------

TEST(CCondTest, SmartConstructorsFoldConstants) {
  EXPECT_EQ(CcEq(kC1, kC1)->kind, CCKind::kTrue);
  EXPECT_EQ(CcEq(kC1, kC2)->kind, CCKind::kFalse);
  EXPECT_EQ(CcEq(kN1, kN1)->kind, CCKind::kTrue);
  EXPECT_EQ(CcNeq(kC1, kC2)->kind, CCKind::kTrue);
  EXPECT_EQ(CcAnd(CcTrue(), CcEq(kN1, kC1))->kind, CCKind::kEq);
  EXPECT_EQ(CcAnd(CcFalse(), CcEq(kN1, kC1))->kind, CCKind::kFalse);
  EXPECT_EQ(CcOr(CcTrue(), CcEq(kN1, kC1))->kind, CCKind::kTrue);
  EXPECT_EQ(CcNot(CcNot(CcEq(kN1, kC1)))->kind, CCKind::kEq);
}

// --- Satisfiability / validity / grounding -------------------------------------

TEST(CCondTest, SatisfiabilityUnionFind) {
  // ⊥1 = 1 ∧ ⊥1 = 2 is unsatisfiable.
  CCondPtr c = CcAnd(CcEq(kN1, kC1), CcEq(kN1, kC2));
  EXPECT_FALSE(SatisfiableCC(c));
  // ⊥1 = 1 ∧ ⊥2 = 2 is satisfiable.
  EXPECT_TRUE(SatisfiableCC(CcAnd(CcEq(kN1, kC1), CcEq(kN2, kC2))));
  // ⊥1 = ⊥2 ∧ ⊥1 = 1 ∧ ⊥2 = 2 is unsatisfiable (transitivity).
  EXPECT_FALSE(SatisfiableCC(
      CcAnd(CcEq(kN1, kN2), CcAnd(CcEq(kN1, kC1), CcEq(kN2, kC2)))));
  // ⊥1 ≠ ⊥1 is unsatisfiable (folded to false already).
  EXPECT_EQ(CcNeq(kN1, kN1)->kind, CCKind::kFalse);
}

TEST(CCondTest, ValidityExamples) {
  // ⊥1 = 1 ∨ ⊥1 ≠ 1 is valid.
  EXPECT_TRUE(ValidCC(CcOr(CcEq(kN1, kC1), CcNeq(kN1, kC1))));
  // ⊥1 = 1 alone is satisfiable but not valid.
  EXPECT_TRUE(SatisfiableCC(CcEq(kN1, kC1)));
  EXPECT_FALSE(ValidCC(CcEq(kN1, kC1)));
  // ⊥1 ≠ 1 ∨ ⊥1 ≠ 2 is valid (no value equals both).
  EXPECT_TRUE(ValidCC(CcOr(CcNeq(kN1, kC1), CcNeq(kN1, kC2))));
  // ⊥1 = 1 ∨ ⊥1 ≠ 2 is NOT valid (v(⊥1) = 2 falsifies both disjuncts).
  EXPECT_FALSE(ValidCC(CcOr(CcEq(kN1, kC1), CcNeq(kN1, kC2))));
  // ⊥1 = 1 ∨ ⊥2 ≠ 2: not valid (⊥1=3, ⊥2=2).
  EXPECT_FALSE(ValidCC(CcOr(CcEq(kN1, kC1), CcNeq(kN2, kC2))));
}

TEST(CCondTest, GroundingThreeWay) {
  EXPECT_EQ(GroundCC(CcOr(CcEq(kN1, kC1), CcNeq(kN1, kC1))), TV3::kT);
  EXPECT_EQ(GroundCC(CcAnd(CcEq(kN1, kC1), CcEq(kN1, kC2))), TV3::kF);
  EXPECT_EQ(GroundCC(CcEq(kN1, kC1)), TV3::kU);
}

TEST(CCondTest, UnknownLiteralBlocksValidity) {
  // u is satisfiable but never valid; u ∨ valid is valid.
  EXPECT_TRUE(SatisfiableCC(CcUnknown()));
  EXPECT_FALSE(ValidCC(CcUnknown()));
  EXPECT_EQ(GroundCC(CcUnknown()), TV3::kU);
  EXPECT_EQ(GroundCC(CcOr(CcUnknown(), CcOr(CcEq(kN1, kC1),
                                            CcNeq(kN1, kC1)))),
            TV3::kT);
  EXPECT_EQ(GroundCC(CcAnd(CcUnknown(), CcNeq(kN1, kN1))), TV3::kF);
}

TEST(CCondTest, EvalUnderTotalValuation) {
  Valuation v;
  v.Set(1, kC1);
  v.Set(2, kC2);
  EXPECT_EQ(EvalCC(CcEq(kN1, kC1), v), TV3::kT);
  EXPECT_EQ(EvalCC(CcEq(kN1, kN2), v), TV3::kF);
  EXPECT_EQ(EvalCC(CcNot(CcEq(kN1, kN2)), v), TV3::kT);
}

TEST(CCondTest, ForcedBindingsFromConjuncts) {
  // ⊥1 = 1 ∧ ⊥1 = ⊥2: both nulls forced (⊥1 ↦ 1, ⊥2 ↦ 1).
  CCondPtr c = CcAnd(CcEq(kN1, kC1), CcEq(kN1, kN2));
  auto forced = ForcedBindings(c);
  EXPECT_EQ(forced.at(1), kC1);
  EXPECT_EQ(forced.at(2), kC1);
  // Disjunctions force nothing.
  auto none = ForcedBindings(CcOr(CcEq(kN1, kC1), CcEq(kN2, kC2)));
  EXPECT_TRUE(none.empty());
}

TEST(CCondTest, SubstPartialValuation) {
  Valuation v;
  v.Set(1, kC1);
  CCondPtr c = SubstCC(CcAnd(CcEq(kN1, kC1), CcEq(kN2, kC2)), v);
  // First conjunct folds to true; the second remains.
  EXPECT_EQ(c->kind, CCKind::kEq);
}

// --- Conditional tables ---------------------------------------------------------

TEST(CTableTest, NormalizedMergesDuplicates) {
  CTable t({"x"});
  t.Add(Tuple{kC1}, CcEq(kN1, kC1));
  t.Add(Tuple{kC1}, CcNeq(kN1, kC1));
  CTable n = t.Normalized();
  ASSERT_EQ(n.size(), 1u);
  // Merged condition ⊥1=1 ∨ ⊥1≠1 is valid → certain.
  EXPECT_TRUE(n.CertainTuples().Contains(Tuple{kC1}));
}

TEST(CTableTest, InstantiateSelectsHoldingTuples) {
  CTable t({"x"});
  t.Add(Tuple{kN1}, CcEq(kN1, kC1));
  t.Add(Tuple{kC2}, CcTrue());
  Valuation v;
  v.Set(1, kC1);
  Relation world = t.Instantiate(v);
  EXPECT_TRUE(world.Contains(Tuple{kC1}));
  EXPECT_TRUE(world.Contains(Tuple{kC2}));
  Valuation v2;
  v2.Set(1, kC2);
  Relation world2 = t.Instantiate(v2);
  EXPECT_FALSE(world2.Contains(Tuple{kC2}) && world2.TotalSize() == 2);
}

TEST(CTableTest, FromDatabaseAllTrue) {
  Database db = testing_util::FigureOne(true);
  CDatabase cdb = CDatabase::FromDatabase(db);
  EXPECT_EQ(cdb.tables.at("Payments").size(), 2u);
  for (const CTuple& ct : cdb.tables.at("Payments").tuples()) {
    EXPECT_EQ(ct.cond->kind, CCKind::kTrue);
  }
}

// --- The paper's semi-eager example ---------------------------------------------

TEST(StrategyTest, SemiEagerPropagatesEqualities) {
  // The c-tuple ⟨⊥2, ⊥1 = c ∧ ⊥1 = ⊥2⟩ should give ⟨c, u⟩ rather than
  // ⟨⊥2, u⟩ (paper's description of Evalˢ). We reproduce it through the
  // Propagate path: σ conditions that force the equality.
  // R(a, b) = {(⊥1, ⊥2)}; σ_{a = 1 ∧ a = b}(R) then project to b.
  Database db;
  Relation r({"a", "b"});
  r.Add({kN1, kN2});
  db.Put("R", r);
  AlgPtr q = Project(Select(Scan("R"), CAnd(CEqc("a", kC1), CEq("a", "b"))),
                     {"b"});
  auto eager = CEval(q, db, CStrategy::kEager);
  auto semi = CEval(q, db, CStrategy::kSemiEager);
  ASSERT_TRUE(eager.ok() && semi.ok());
  // Eager keeps the null datum.
  ASSERT_EQ(eager->size(), 1u);
  EXPECT_EQ(eager->tuples()[0].data, Tuple{kN2});
  // Semi-eager rewrites it to the forced constant.
  ASSERT_EQ(semi->size(), 1u);
  EXPECT_EQ(semi->tuples()[0].data, Tuple{kC1});
}

// --- Theorem 4.9 -----------------------------------------------------------------

class StrategyProperty : public ::testing::TestWithParam<int> {};

TEST_P(StrategyProperty, EagerEqualsFig2bScheme) {
  // Theorem 4.9: Q+(D) = Evalᵉt(Q, D) and Q?(D) = Evalᵉp(Q, D). The
  // theorem is stated for the paper's core grammar, so both sides are fed
  // the same PrepareForTranslation output (∩ is rewritten as Q1−(Q1−Q2);
  // the conditional evaluator's native ∩ is *more* precise than that
  // rewriting, which would otherwise break exact equality).
  std::mt19937_64 rng(GetParam());
  Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
  for (const AlgPtr& zoo_q : testing_util::QueryZoo()) {
    auto prepared = PrepareForTranslation(zoo_q, db);
    ASSERT_TRUE(prepared.ok()) << zoo_q->ToString();
    const AlgPtr& q = *prepared;
    auto plus = EvalPlus(q, db);
    auto maybe = EvalMaybe(q, db);
    auto ct = CEvalCertain(q, db, CStrategy::kEager);
    auto cp = CEvalPossible(q, db, CStrategy::kEager);
    ASSERT_TRUE(plus.ok() && maybe.ok() && ct.ok() && cp.ok())
        << q->ToString();
    EXPECT_TRUE(plus->SameRows(*ct))
        << q->ToString() << "\n Q+: " << plus->ToString()
        << "\n Evalᵉt: " << ct->ToString();
    EXPECT_TRUE(maybe->SameRows(*cp))
        << q->ToString() << "\n Q?: " << maybe->ToString()
        << "\n Evalᵉp: " << cp->ToString();
  }
}

TEST_P(StrategyProperty, AllStrategiesHaveCorrectnessGuarantees) {
  // Theorem 4.9: Eval⋆t(Q, D) ⊆ cert⊥(Q, D) for every strategy.
  std::mt19937_64 rng(GetParam() + 100);
  Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
  for (const AlgPtr& q : testing_util::QueryZoo()) {
    auto cert = CertWithNulls(q, db);
    ASSERT_TRUE(cert.ok());
    for (CStrategy s : {CStrategy::kEager, CStrategy::kSemiEager,
                        CStrategy::kLazy, CStrategy::kAware}) {
      auto ct = CEvalCertain(q, db, s);
      ASSERT_TRUE(ct.ok()) << q->ToString() << " " << ToString(s);
      EXPECT_TRUE(ct->SubBagOf(*cert))
          << q->ToString() << " strategy " << ToString(s)
          << "\n Eval⋆t: " << ct->ToString()
          << "\n cert⊥: " << cert->ToString();
    }
  }
}

TEST_P(StrategyProperty, LaterStrategiesAreAtLeastAsPrecise) {
  // [36]: deferring grounding only gains certain answers:
  // Evalᵉt ⊆ Evalˢt ⊆ Evalˡt ⊆ Evalᵃt.
  std::mt19937_64 rng(GetParam() + 200);
  Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
  for (const AlgPtr& q : testing_util::QueryZoo()) {
    auto e = CEvalCertain(q, db, CStrategy::kEager);
    auto s = CEvalCertain(q, db, CStrategy::kSemiEager);
    auto l = CEvalCertain(q, db, CStrategy::kLazy);
    auto a = CEvalCertain(q, db, CStrategy::kAware);
    ASSERT_TRUE(e.ok() && s.ok() && l.ok() && a.ok()) << q->ToString();
    EXPECT_TRUE(e->SubBagOf(*s)) << q->ToString();
    EXPECT_TRUE(s->SubBagOf(*l)) << q->ToString();
    EXPECT_TRUE(l->SubBagOf(*a)) << q->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(StrategyTest, AwareStrictlyBeatsEagerSomewhere) {
  // A witness where postponing grounding pays: R − (S − T) with
  // R = S = {⊥1} and T = {⊥1}. The aware evaluation keeps the exact
  // condition and certifies ⊥1; eager grounds intermediate u's away.
  Database db;
  Relation r({"x"}), s({"x"}), t({"x"});
  r.Add({kN1});
  s.Add({kN1});
  t.Add({kC1});
  db.Put("R", r);
  db.Put("S", s);
  db.Put("T", t);
  AlgPtr q = Diff(Scan("R"), Diff(Scan("S"), Scan("T")));
  auto eager = CEvalCertain(q, db, CStrategy::kEager);
  auto aware = CEvalCertain(q, db, CStrategy::kAware);
  auto cert = CertWithNulls(q, db);
  ASSERT_TRUE(eager.ok() && aware.ok() && cert.ok());
  // cert⊥ here: ⊥1 certain iff in every world v, v(⊥1) ∈ R−(S−T) =
  // R − (S−T); S−T = ∅ if v(⊥1)=1 else {v(⊥1)}; so R−(S−T) = {v(⊥1)}
  // iff v(⊥1)=1 ... not certain. Both must be sound:
  EXPECT_TRUE(eager->SubBagOf(*cert));
  EXPECT_TRUE(aware->SubBagOf(*cert));
  EXPECT_TRUE(eager->SubBagOf(*aware));
}

TEST(StrategyTest, AwareRecoversValidDisjunction) {
  // σ_{x=1}(R) ∪ σ_{x≠1}(R) with R = {⊥1}: the union's condition is the
  // valid ⊥1=1 ∨ ⊥1≠1. Aware (grounding at the end, after merging
  // duplicates) certifies ⊥1; eager grounds each branch to u first and —
  // after the duplicate merge u ∨ u — still reports u.
  Database db;
  Relation r({"x"});
  r.Add({kN1});
  db.Put("R", r);
  AlgPtr q = Union(Select(Scan("R"), CEqc("x", kC1)),
                   Select(Scan("R"), CNeqc("x", kC1)));
  auto eager = CEvalCertain(q, db, CStrategy::kEager);
  auto aware = CEvalCertain(q, db, CStrategy::kAware);
  ASSERT_TRUE(eager.ok() && aware.ok());
  EXPECT_TRUE(eager->Empty());
  EXPECT_TRUE(aware->Contains(Tuple{kN1}));
  // And the certain answers agree with aware here.
  auto cert = CertWithNulls(q, db);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(aware->SameRows(*cert));
}

TEST(StrategyTest, PolynomialSizedConditions) {
  // Eval strategies stay polynomial: a moderately sized difference query
  // completes quickly (sanity check, not a benchmark).
  Database db;
  Relation r({"x"}), s({"x"});
  for (int i = 0; i < 30; ++i) r.Add({Value::Int(i)});
  for (int i = 0; i < 15; ++i) s.Add({Value::Int(2 * i)});
  s.Add({Value::Null(1)});
  db.Put("R", r);
  db.Put("S", s);
  AlgPtr q = Diff(Scan("R"), Scan("S"));
  for (CStrategy st : {CStrategy::kEager, CStrategy::kSemiEager,
                       CStrategy::kLazy, CStrategy::kAware}) {
    auto res = CEvalCertain(q, db, st);
    ASSERT_TRUE(res.ok()) << ToString(st);
    // Odd constants unify with ⊥1 → only certain if... none are certain
    // (⊥1 can hit any odd value); evens are in S definitely.
    EXPECT_TRUE(res->Empty()) << ToString(st);
  }
}

TEST(StrategyTest, SugarOperatorsAreDesugaredInternally) {
  // CEval accepts the SQL-translator output (kNotIn etc.) by desugaring;
  // results must agree with the Fig. 2(b) scheme per Theorem 4.9.
  Database db;
  Relation r({"x"}), s({"y"});
  r.Add({Value::Int(1)});
  r.Add({Value::Int(2)});
  s.Add({Value::Int(1)});
  s.Add({Value::Null(1)});
  db.Put("R", r);
  db.Put("S", s);
  AlgPtr q = NotInPredicate(Scan("R"), Scan("S"), {"x"}, {"y"}, CTrue());
  auto ct = CEvalCertain(q, db, CStrategy::kEager);
  auto plus = EvalPlus(q, db);
  ASSERT_TRUE(ct.ok() && plus.ok());
  EXPECT_TRUE(ct->SameRows(*plus));
  // Nothing is certain: ⊥1 can be 2.
  EXPECT_TRUE(ct->Empty());
  // Aware agrees here (no valid disjunction to recover).
  auto aware = CEvalCertain(q, db, CStrategy::kAware);
  ASSERT_TRUE(aware.ok());
  EXPECT_TRUE(aware->Empty());
}

TEST(StrategyTest, OrderConditionsRejected) {
  Database db;
  Relation r({"x"});
  r.Add({Value::Null(1)});
  db.Put("R", r);
  auto res = CEvalCertain(Select(Scan("R"), CLtc("x", Value::Int(5))), db,
                          CStrategy::kEager);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace incdb
