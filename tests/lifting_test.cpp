// Tests for src/logic/lifting: the Theorem 5.1 lifting criterion (§5.1),
// executable end to end — condition (2) checked exhaustively, atomic and
// lifted correctness checked empirically against brute-force cert⊥.

#include <gtest/gtest.h>

#include "approx/approx.h"
#include "certain/certain.h"
#include "certain/valuation_family.h"
#include "logic/fo_eval.h"
#include "logic/lifting.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

TEST(LiftingTest, KleeneRespectsKnowledgeOrder) {
  EXPECT_TRUE(KnowledgeMonotone(PropositionalLogic::Kleene3()));
}

TEST(LiftingTest, AssertBreaksKnowledgeOrder) {
  // §5.2's diagnosis: the assertion operator is the culprit.
  PropositionalLogic l = PropositionalLogic::Kleene3WithAssert();
  EXPECT_FALSE(KnowledgeMonotone(l));
  EXPECT_EQ(FirstKnowledgeOrderViolation(l), "↑");
}

TEST(LiftingTest, BoolAtomSemanticsFailsAtomicCorrectness) {
  // The paper's (12)-semantics counterexample: D = {R(1, ⊥)} gives
  // ⟦R(1,1)⟧bool = f, but (1,1) is not certainly absent (v(⊥)=1).
  Database db;
  Relation r({"a", "b"});
  r.Add({Value::Int(1), Value::Null(1)});
  db.Put("R", r);
  FormulaPtr atom = FAtom("R", {Term::Const(Value::Int(1)),
                                Term::Const(Value::Int(1))});
  auto tv = EvalFO(atom, db, {}, MixedSemantics::Bool());
  ASSERT_TRUE(tv.ok());
  EXPECT_EQ(*tv, TV3::kF);  // claims certainly false...
  // ...but the valuation ⊥ ↦ 1 makes R(1,1) true, so f is not sound.
  Valuation v;
  v.Set(1, Value::Int(1));
  Database world = v.ApplySet(db);
  EXPECT_TRUE(world.at("R").Contains(Tuple{Value::Int(1), Value::Int(1)}));
}

TEST(LiftingTest, UnifAtomicCorrectnessLiftsToCompoundFormulae) {
  // The constructive direction of Theorem 5.1: ⟦·⟧unif is correct on
  // atoms (Corollary 5.2's premise); with Kleene connectives the whole
  // FO evaluation stays correct. Empirically: on random databases, every
  // t-valued compound formula answer is in cert⊥ of the matching algebra
  // query, and every f-valued one is certainly absent.
  std::mt19937_64 rng(91);
  for (int round = 0; round < 8; ++round) {
    Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
    // φ(x) = T(x) ∧ ¬∃y S(x, y) — uses ∧, ¬, ∃ above the atoms.
    FormulaPtr phi =
        FAnd(FAtom("T", {Term::Var("x")}),
             FNot(FExists("y", FAtom("S", {Term::Var("x"), Term::Var("y")}))));
    AlgPtr q = Diff(Scan("T"), Rename(Project(Scan("S"), {"S_a"}), {"T_a"}));
    auto cert_pos = CertWithNulls(q, db);
    ASSERT_TRUE(cert_pos.ok());
    for (const Value& a : db.ActiveDomain()) {
      auto tv = EvalFO(phi, db, {{"x", a}}, MixedSemantics::Unif());
      ASSERT_TRUE(tv.ok());
      if (*tv == TV3::kT) {
        EXPECT_TRUE(cert_pos->Contains(Tuple{a}))
            << "t-answer " << a.ToString() << " not certain";
      } else if (*tv == TV3::kF) {
        // Certainly false: v(a) ∉ Q(v(D)) for *every* valuation of the
        // sufficient family.
        std::set<uint64_t> ids = db.NullIds();
        std::vector<uint64_t> nulls(ids.begin(), ids.end());
        std::vector<Value> consts = FamilyConstants(db, QueryConstants(q));
        Status st = ForEachValuation(
            nulls, consts, 200000, [&](const Valuation& v) {
              auto world_ans = EvalSet(q, v.ApplySet(db));
              EXPECT_TRUE(world_ans.ok());
              EXPECT_FALSE(world_ans->Contains(v.Apply(Tuple{a})))
                  << "f-answer " << a.ToString() << " holds under "
                  << v.ToString();
              return !::testing::Test::HasFailure();
            });
        ASSERT_TRUE(st.ok());
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

TEST(LiftingTest, AssertedFormulaeCanClaimFalseWrongly) {
  // With ↑ in the logic, the f value is no longer a certainty claim:
  // ↑(x = ⊥) is f even though x = ⊥ may hold. This is why FO(L3v↑)
  // (i.e. SQL) loses the almost-certainly-true guarantee (§5.2).
  Database db;
  Relation r({"a"});
  r.Add({Value::Null(1)});
  db.Put("R", r);
  FormulaPtr eq = FEq(Term::Const(Value::Int(1)), Term::Const(Value::Null(1)));
  auto plain = EvalFO(eq, db, {}, MixedSemantics::Unif());
  auto asserted = EvalFO(FAssert(eq), db, {}, MixedSemantics::Unif());
  ASSERT_TRUE(plain.ok() && asserted.ok());
  EXPECT_EQ(*plain, TV3::kU);      // honest: unknown
  EXPECT_EQ(*asserted, TV3::kF);   // ↑ collapses to false — unsound as
                                   // a certainty claim (v(⊥1)=1 refutes)
}

}  // namespace
}  // namespace incdb
