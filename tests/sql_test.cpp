// Tests for src/sql: lexer, parser, algebra translation, and the
// end-to-end reproduction of the paper's §1 SQL queries (driven through
// the api/session.h facade; the free-function entry points stay covered
// by the translation tests).

#include <gtest/gtest.h>

#include "api/session.h"
#include "sql/translate.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, KeywordsIdentifiersLiterals) {
  auto toks = Tokenize("select A from T where a <> 3.5 and b = 'txt'");
  ASSERT_TRUE(toks.ok());
  // 0:SELECT 1:A 2:FROM 3:T 4:WHERE 5:a 6:<> 7:3.5 8:AND 9:b 10:= 11:'txt'
  EXPECT_EQ((*toks)[0].text, "SELECT");  // case-folded keyword
  EXPECT_EQ((*toks)[1].kind, TokKind::kIdent);
  EXPECT_EQ((*toks)[1].text, "A");  // identifier case preserved
  EXPECT_EQ((*toks)[6].text, "<>");
  EXPECT_EQ((*toks)[7].kind, TokKind::kNumber);
  EXPECT_EQ((*toks)[7].text, "3.5");
  EXPECT_EQ((*toks)[11].kind, TokKind::kString);
  EXPECT_EQ((*toks)[11].text, "txt");
  EXPECT_EQ(toks->back().kind, TokKind::kEof);
}

TEST(LexerTest, QualifiedNumbersVsDots) {
  auto toks = Tokenize("T.a = 1.5");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "T");
  EXPECT_EQ((*toks)[1].text, ".");
  EXPECT_EQ((*toks)[2].text, "a");
  EXPECT_EQ((*toks)[4].text, "1.5");
}

TEST(LexerTest, ParameterPlaceholderSymbol) {
  auto toks = Tokenize("price > ? AND cid = ?");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].kind, TokKind::kSymbol);
  EXPECT_EQ((*toks)[2].text, "?");
  EXPECT_EQ((*toks)[6].text, "?");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, UnexpectedCharacter) {
  EXPECT_FALSE(Tokenize("SELECT a; DROP").ok());
}

// --- Parser ------------------------------------------------------------------

TEST(ParserTest, BasicSelect) {
  auto q = ParseSql("SELECT oid FROM Orders WHERE price = 30");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE((*q)->distinct);
  ASSERT_EQ((*q)->select.size(), 1u);
  EXPECT_EQ((*q)->select[0].name, "oid");
  ASSERT_EQ((*q)->from.size(), 1u);
  EXPECT_EQ((*q)->from[0].table, "Orders");
  EXPECT_EQ((*q)->from[0].alias, "Orders");
  ASSERT_TRUE((*q)->where != nullptr);
  EXPECT_EQ((*q)->where->kind, SqlExprKind::kCmpColLit);
}

TEST(ParserTest, AliasesAndStar) {
  auto q = ParseSql("SELECT * FROM Orders O, Payments AS P");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE((*q)->select_star);
  EXPECT_EQ((*q)->from[0].alias, "O");
  EXPECT_EQ((*q)->from[1].alias, "P");
}

TEST(ParserTest, NotInSubquery) {
  auto q = ParseSql(
      "SELECT oid FROM Orders WHERE oid NOT IN "
      "( SELECT oid FROM Payments )");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE((*q)->where != nullptr);
  EXPECT_EQ((*q)->where->kind, SqlExprKind::kInSubquery);
  EXPECT_TRUE((*q)->where->negated);
  EXPECT_EQ((*q)->where->subquery->from[0].table, "Payments");
}

TEST(ParserTest, NotExistsFoldsNegation) {
  auto q = ParseSql(
      "SELECT C.cid FROM Customers C WHERE NOT EXISTS "
      "( SELECT * FROM Orders O, Payments P "
      "  WHERE C.cid = P.cid AND P.oid = O.oid )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->where->kind, SqlExprKind::kExists);
  EXPECT_TRUE((*q)->where->negated);
}

TEST(ParserTest, IsNullAndBooleans) {
  auto q = ParseSql(
      "SELECT a FROM T WHERE a IS NOT NULL AND (b = 1 OR NOT c = 2)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->where->kind, SqlExprKind::kAnd);
}

TEST(ParserTest, ParametersNumberedInTextOrder) {
  auto q = ParseSql(
      "SELECT oid FROM Orders WHERE price > ? AND oid NOT IN "
      "( SELECT oid FROM Payments WHERE cid = ? )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->param_count, 2u);
  // First conjunct: price > ?0.
  ASSERT_EQ((*q)->where->kind, SqlExprKind::kAnd);
  const SqlExprPtr& cmp = (*q)->where->l;
  ASSERT_EQ(cmp->kind, SqlExprKind::kCmpColLit);
  ASSERT_TRUE(cmp->literal.is_param());
  EXPECT_EQ(cmp->literal.param_index(), 0u);
  // Subquery WHERE: cid = ?1.
  const SqlExprPtr& in = (*q)->where->r;
  ASSERT_EQ(in->kind, SqlExprKind::kInSubquery);
  ASSERT_TRUE(in->subquery->where->literal.is_param());
  EXPECT_EQ(in->subquery->where->literal.param_index(), 1u);
}

TEST(ParserTest, ColumnsAndTablesCarryOffsets) {
  auto q = ParseSql("SELECT oid FROM Orders WHERE price = 30");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->select[0].pos, 7u);
  EXPECT_EQ((*q)->from[0].pos, 16u);
}

TEST(ParserTest, TrailingInputRejected) {
  EXPECT_FALSE(ParseSql("SELECT a FROM T extra garbage ( ").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM T").ok());
  EXPECT_FALSE(ParseSql("SELECT a WHERE b = 1").ok());
}

// --- Translation -------------------------------------------------------------

TEST(TranslateSqlTest, SimpleSelectEvaluates) {
  Database db = FigureOne(false);
  auto alg = ParseSqlToAlgebra(
      "SELECT oid FROM Orders WHERE price = 30", db);
  ASSERT_TRUE(alg.ok()) << alg.status().ToString();
  auto res = EvalSql(*alg, db);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->SortedTuples(),
            std::vector<Tuple>{Tuple{Value::String("o1")}});
}

TEST(TranslateSqlTest, UnknownTableOrColumn) {
  Database db = FigureOne(false);
  auto no_table = ParseSqlToAlgebra("SELECT a FROM Nope", db);
  ASSERT_FALSE(no_table.ok());
  EXPECT_NE(no_table.status().message().find("at offset 14"),
            std::string::npos)
      << no_table.status().ToString();
  auto no_col = ParseSqlToAlgebra("SELECT nope FROM Orders", db);
  ASSERT_FALSE(no_col.ok());
  EXPECT_NE(no_col.status().message().find("at offset 7"), std::string::npos)
      << no_col.status().ToString();
  auto no_where = ParseSqlToAlgebra(
      "SELECT oid FROM Orders WHERE nope = 1", db);
  ASSERT_FALSE(no_where.ok());
  EXPECT_NE(no_where.status().message().find("at offset 29"),
            std::string::npos)
      << no_where.status().ToString();
}

TEST(TranslateSqlTest, AmbiguousColumnRejected) {
  Database db = FigureOne(false);
  // cid exists in both Payments and Customers.
  auto res = ParseSqlToAlgebra(
      "SELECT cid FROM Payments, Customers", db);
  EXPECT_FALSE(res.ok());
}

TEST(TranslateSqlTest, QualifiedColumnsAndJoin) {
  Session sess(FigureOne(false));
  auto res = sess.Execute(
      "SELECT C.name FROM Payments P, Customers C WHERE P.cid = C.cid");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->SortedTuples().size(), 2u);
}

// --- The paper's §1 queries, end to end ----------------------------------------

const char* kUnpaidOrdersSql =
    "SELECT oid FROM Orders WHERE oid NOT IN "
    "( SELECT oid FROM Payments )";

const char* kCustomersNoPaidSql =
    "SELECT C.cid FROM Customers C WHERE NOT EXISTS "
    "( SELECT * FROM Orders O, Payments P "
    "  WHERE C.cid = P.cid AND P.oid = O.oid )";

const char* kTautologySql =
    "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'";

TEST(PaperSqlTest, CompleteDatabase) {
  Session sess(FigureOne(false));
  auto r1 = sess.Execute(kUnpaidOrdersSql);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->SortedTuples(),
            std::vector<Tuple>{Tuple{Value::String("o3")}});

  auto r2 = sess.Execute(kCustomersNoPaidSql);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r2->Empty());
}

TEST(PaperSqlTest, NullDatabaseFalseNegativesAndPositives) {
  Session sess(FigureOne(true));
  // Unpaid orders: empty (false negative — certain answer is also empty,
  // but SQL loses o3 which it itself returned before).
  auto r1 = sess.Execute(kUnpaidOrdersSql);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->Empty());

  // Customers with no paid order: SQL invents c2 — a false positive
  // w.r.t. certain answers.
  auto nopaid = sess.Prepare(kCustomersNoPaidSql);
  ASSERT_TRUE(nopaid.ok());
  auto r2 = nopaid->Execute();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->SortedTuples(),
            std::vector<Tuple>{Tuple{Value::String("c2")}});
  auto cert = sess.CertainWithNulls(nopaid->algebra());
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(cert->Empty()) << "c2 must not be certain";

  // Tautology: SQL returns only c1; certain answers are {c1, c2}.
  auto taut = sess.Prepare(kTautologySql);
  ASSERT_TRUE(taut.ok());
  auto r3 = taut->Execute();
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->SortedTuples(),
            std::vector<Tuple>{Tuple{Value::String("c1")}});
  auto cert3 = sess.CertainWithNulls(taut->algebra());
  ASSERT_TRUE(cert3.ok());
  EXPECT_EQ(cert3->SortedTuples().size(), 2u);
}

TEST(PaperSqlTest, TranslatedQueriesFeedApproximations) {
  // The same prepared SQL runs through the Fig. 2(b) scheme: Q+ never
  // returns the false positive.
  Session sess(FigureOne(true));
  auto nopaid = sess.Prepare(kCustomersNoPaidSql);
  ASSERT_TRUE(nopaid.ok());
  auto plus = sess.CertainPlus(nopaid->algebra());
  ASSERT_TRUE(plus.ok()) << plus.status().ToString();
  EXPECT_TRUE(plus->Empty());
  auto maybe = sess.CertainMaybe(nopaid->algebra());
  ASSERT_TRUE(maybe.ok());
  EXPECT_TRUE(maybe->Contains(Tuple{Value::String("c2")}));
}

TEST(PaperSqlTest, CorrelationDepthLimit) {
  // Depth-2 correlation (innermost references the outermost alias) is
  // rejected with Unsupported, not silently mistranslated.
  Session sess(FigureOne(false));
  auto res = sess.Prepare(
      "SELECT C.cid FROM Customers C WHERE NOT EXISTS "
      "( SELECT * FROM Orders O WHERE EXISTS "
      "  ( SELECT * FROM Payments P WHERE P.cid = C.cid ) )");
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnsupported);
}

TEST(PaperSqlTest, DistinctIsAccepted) {
  Session sess(FigureOne(false));
  auto res = sess.Execute("SELECT DISTINCT cid FROM Payments");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->SortedTuples().size(), 2u);
}

}  // namespace
}  // namespace incdb
