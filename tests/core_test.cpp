// Unit tests for src/core: values, tuples, unifiability, relations,
// databases, valuations.

#include <gtest/gtest.h>

#include <algorithm>
#include <type_traits>
#include <utility>

#include "core/database.h"
#include "core/intern.h"
#include "core/relation.h"
#include "core/status.h"
#include "core/tuple.h"
#include "core/valuation.h"
#include "core/value.h"

namespace incdb {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  Value i = Value::Int(42);
  Value d = Value::Double(3.5);
  Value s = Value::String("abc");
  Value n = Value::Null(7);

  EXPECT_TRUE(i.is_const());
  EXPECT_TRUE(d.is_const());
  EXPECT_TRUE(s.is_const());
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(i.as_int(), 42);
  EXPECT_DOUBLE_EQ(d.as_double(), 3.5);
  EXPECT_EQ(s.as_string(), "abc");
  EXPECT_EQ(n.null_id(), 7u);
}

TEST(ValueTest, SyntacticEquality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  // Typed constants: Int(1) and String("1") are different constants.
  EXPECT_NE(Value::Int(1), Value::String("1"));
  // Marked nulls: identical iff same id; a null never equals a constant.
  EXPECT_EQ(Value::Null(1), Value::Null(1));
  EXPECT_NE(Value::Null(1), Value::Null(2));
  EXPECT_NE(Value::Null(1), Value::Int(1));
}

TEST(ValueTest, TotalOrderIsDeterministic) {
  std::vector<Value> vals = {Value::String("b"), Value::Int(2), Value::Null(1),
                             Value::Int(1), Value::String("a"),
                             Value::Double(0.5), Value::Null(0)};
  std::sort(vals.begin(), vals.end());
  // Nulls sort before ints before doubles before strings (by kind).
  EXPECT_EQ(vals[0], Value::Null(0));
  EXPECT_EQ(vals[1], Value::Null(1));
  EXPECT_EQ(vals[2], Value::Int(1));
  EXPECT_EQ(vals[3], Value::Int(2));
  EXPECT_EQ(vals[4], Value::Double(0.5));
  EXPECT_EQ(vals[5], Value::String("a"));
  EXPECT_EQ(vals[6], Value::String("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Null(3).Hash(), Value::Null(3).Hash());
  EXPECT_EQ(Value::String("xy").Hash(), Value::String("xy").Hash());
  // Null id 3 and Int 3 must not collide by construction of the kind salt.
  EXPECT_NE(Value::Null(3).Hash(), Value::Int(3).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::Null(2).ToString(), "⊥2");
  EXPECT_EQ(Value::Double(3.5).ToString(), "3.5");
}

// --- Compact layout (interned strings, trivially copyable Value) -----------

TEST(ValueLayoutTest, TriviallyCopyableAndCompact) {
  static_assert(std::is_trivially_copyable_v<Value>);
  static_assert(sizeof(Value) <= 16);
  EXPECT_TRUE(std::is_trivially_copyable_v<Value>);
  EXPECT_LE(sizeof(Value), 16u);
}

TEST(ValueLayoutTest, InternIdAgreesWithStringEquality) {
  Value a = Value::String("intern-me");
  Value b = Value::String(std::string("intern") + "-me");  // separate buffer
  Value c = Value::String("intern-you");
  // Same contents → same pool id → equal; different contents → different id.
  EXPECT_EQ(a.string_id(), b.string_id());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.string_id(), c.string_id());
  EXPECT_NE(a, c);
  // The pool hands back the contents by reference, and both values share it.
  EXPECT_EQ(a.as_string(), "intern-me");
  EXPECT_EQ(&a.as_string(), &b.as_string());
  EXPECT_EQ(StringPool::Get(a.string_id()), "intern-me");
}

TEST(ValueLayoutTest, BehaviourUnchangedAcrossKinds) {
  // Pairs of equal and unequal values of every kind: hash must agree with
  // equality, operator< must order by kind then payload (strings by
  // content, not by intern id), and ToString must render the payload.
  const Value eq_pairs[][2] = {
      {Value::Null(9), Value::Null(9)},
      {Value::Int(-4), Value::Int(-4)},
      {Value::Double(2.25), Value::Double(2.25)},
      {Value::String("zz"), Value::String("zz")},
  };
  for (const auto& pair : eq_pairs) {
    EXPECT_EQ(pair[0], pair[1]);
    EXPECT_EQ(pair[0].Hash(), pair[1].Hash());
    EXPECT_FALSE(pair[0] < pair[1]);
    EXPECT_FALSE(pair[1] < pair[0]);
    EXPECT_EQ(pair[0].ToString(), pair[1].ToString());
  }
  // Content order for strings even when intern order differs: interning
  // "b-late" after "a-late" must not make it sort first.
  Value late_b = Value::String("layout-b");
  Value late_a = Value::String("layout-a");
  EXPECT_LT(late_a, late_b);
  EXPECT_FALSE(late_b < late_a);
  // Payload order within the other kinds.
  EXPECT_LT(Value::Int(-1), Value::Int(3));
  EXPECT_LT(Value::Double(0.5), Value::Double(1.5));
  EXPECT_LT(Value::Null(1), Value::Null(2));
  // Kind order: null < int < double < string.
  EXPECT_LT(Value::Null(99), Value::Int(-100));
  EXPECT_LT(Value::Int(100), Value::Double(-5.0));
  EXPECT_LT(Value::Double(1e9), Value::String("a"));
}

TEST(TupleLayoutTest, CachedHashSurvivesCopyAndMove) {
  Tuple t{Value::Int(1), Value::String("h"), Value::Null(2)};
  size_t h = t.Hash();
  Tuple copy = t;
  EXPECT_EQ(copy.Hash(), h);
  Tuple moved = std::move(copy);
  EXPECT_EQ(moved.Hash(), h);
  EXPECT_EQ(moved, t);
}

TEST(TupleLayoutTest, CachedHashConsistentAfterAppend) {
  Tuple t{Value::Int(1)};
  size_t h1 = t.Hash();
  t.Append(Value::Int(2));
  // The cache must be invalidated: the hash now matches a fresh tuple with
  // the same contents, not the stale one-component hash.
  Tuple fresh{Value::Int(1), Value::Int(2)};
  EXPECT_EQ(t.Hash(), fresh.Hash());
  EXPECT_EQ(t, fresh);
  EXPECT_NE(t.Hash(), h1);
}

TEST(TupleLayoutTest, CachedHashConsistentAfterMutation) {
  Tuple t{Value::Int(1), Value::Int(2)};
  (void)t.Hash();  // populate the cache
  t[1] = Value::Int(7);  // mutable operator[] must invalidate it
  EXPECT_EQ(t.Hash(), (Tuple{Value::Int(1), Value::Int(7)}).Hash());
  t.Set(0, Value::Null(4));  // Set() likewise
  EXPECT_EQ(t.Hash(), (Tuple{Value::Null(4), Value::Int(7)}).Hash());
  EXPECT_EQ(t, (Tuple{Value::Null(4), Value::Int(7)}));
}

TEST(TupleLayoutTest, AssignConcatProjectMatchAllocatingForms) {
  Tuple a{Value::Int(1), Value::String("s")};
  Tuple b{Value::Null(3)};
  Tuple scratch;
  scratch.AssignConcat(a, b);
  EXPECT_EQ(scratch, a.Concat(b));
  EXPECT_EQ(scratch.Hash(), a.Concat(b).Hash());
  Tuple proj;
  proj.AssignProject(scratch, {2, 0});
  EXPECT_EQ(proj, scratch.Project({2, 0}));
  // Reuse the same scratch tuples with different shapes.
  scratch.AssignConcat(b, b);
  EXPECT_EQ(scratch, b.Concat(b));
}

TEST(TupleTest, ConcatAndProject) {
  Tuple a{Value::Int(1), Value::Int(2)};
  Tuple b{Value::Int(3)};
  Tuple c = a.Concat(b);
  EXPECT_EQ(c.arity(), 3u);
  EXPECT_EQ(c[2], Value::Int(3));
  Tuple p = c.Project({2, 0});
  EXPECT_EQ(p, (Tuple{Value::Int(3), Value::Int(1)}));
}

TEST(TupleTest, AllConst) {
  EXPECT_TRUE((Tuple{Value::Int(1), Value::String("a")}).AllConst());
  EXPECT_FALSE((Tuple{Value::Int(1), Value::Null(0)}).AllConst());
  EXPECT_TRUE(Tuple{}.AllConst());
}

// --- Unifiability (r̄ ⇑ s̄), the basis of ⋉⇑ and ⟦·⟧unif -------------------

TEST(UnifiableTest, ConstantsMustMatch) {
  EXPECT_TRUE(Unifiable(Tuple{Value::Int(1)}, Tuple{Value::Int(1)}));
  EXPECT_FALSE(Unifiable(Tuple{Value::Int(1)}, Tuple{Value::Int(2)}));
}

TEST(UnifiableTest, NullMatchesAnything) {
  EXPECT_TRUE(Unifiable(Tuple{Value::Null(1)}, Tuple{Value::Int(5)}));
  EXPECT_TRUE(Unifiable(Tuple{Value::Null(1)}, Tuple{Value::Null(2)}));
}

TEST(UnifiableTest, RepeatedMarkedNullConstraints) {
  // (⊥1, ⊥1) unifies with (1, 1) but not with (1, 2).
  Tuple r{Value::Null(1), Value::Null(1)};
  EXPECT_TRUE(Unifiable(r, Tuple{Value::Int(1), Value::Int(1)}));
  EXPECT_FALSE(Unifiable(r, Tuple{Value::Int(1), Value::Int(2)}));
}

TEST(UnifiableTest, TransitiveNullChains) {
  // (⊥1, ⊥1, ⊥2) vs (⊥3, 7, ⊥3): ⊥1~⊥3, ⊥1~7 → ⊥3~7, ⊥2~⊥3 fine.
  Tuple a{Value::Null(1), Value::Null(1), Value::Null(2)};
  Tuple b{Value::Null(3), Value::Int(7), Value::Null(3)};
  EXPECT_TRUE(Unifiable(a, b));
  // (⊥1, ⊥1, 8) vs (⊥3, 7, ⊥3): chain forces 7 = 8 → fail.
  Tuple c{Value::Null(1), Value::Null(1), Value::Int(8)};
  EXPECT_FALSE(Unifiable(c, b));
}

TEST(UnifiableTest, ArityMismatchNeverUnifies) {
  EXPECT_FALSE(Unifiable(Tuple{Value::Null(1)}, Tuple{}));
}

TEST(UnifiableTest, CrossTupleSharedNulls) {
  // The same marked null on both sides is one variable: (⊥1, 1) ⇑ (2, ⊥1)
  // forces ⊥1 = 2 and ⊥1 = 1 → fail.
  Tuple a{Value::Null(1), Value::Int(1)};
  Tuple b{Value::Int(2), Value::Null(1)};
  EXPECT_FALSE(Unifiable(a, b));
  // (⊥1, 1) ⇑ (1, ⊥1) forces ⊥1 = 1 twice → ok.
  Tuple c{Value::Int(1), Value::Null(1)};
  EXPECT_TRUE(Unifiable(a, c));
}

// --- Relation --------------------------------------------------------------

TEST(RelationTest, InsertCountAndMultiplicity) {
  Relation r({"a", "b"});
  r.Add({Value::Int(1), Value::Int(2)});
  r.Add({Value::Int(1), Value::Int(2)}, 2);
  r.Add({Value::Int(3), Value::Null(0)});
  EXPECT_EQ(r.Count(Tuple{Value::Int(1), Value::Int(2)}), 3u);
  EXPECT_EQ(r.DistinctSize(), 2u);
  EXPECT_EQ(r.TotalSize(), 4u);
  EXPECT_FALSE(r.IsSet());
  Relation s = r.ToSet();
  EXPECT_TRUE(s.IsSet());
  EXPECT_EQ(s.TotalSize(), 2u);
}

TEST(RelationTest, ArityMismatchRejected) {
  Relation r({"a"});
  Status st = r.Insert(Tuple{Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, AttrIndexLookup) {
  Relation r({"x", "y"});
  ASSERT_TRUE(r.AttrIndex("y").ok());
  EXPECT_EQ(r.AttrIndex("y").value(), 1u);
  EXPECT_EQ(r.AttrIndex("z").status().code(), StatusCode::kNotFound);
}

TEST(RelationTest, SubBagOf) {
  Relation a({"x"}), b({"x"});
  a.Add({Value::Int(1)}, 2);
  b.Add({Value::Int(1)}, 3);
  b.Add({Value::Int(2)});
  EXPECT_TRUE(a.SubBagOf(b));
  EXPECT_FALSE(b.SubBagOf(a));
}

TEST(RelationTest, SortedTuplesDeterministic) {
  Relation r({"x"});
  r.Add({Value::Int(3)});
  r.Add({Value::Int(1)});
  r.Add({Value::Null(0)});
  auto ts = r.SortedTuples();
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0], Tuple{Value::Null(0)});
  EXPECT_EQ(ts[1], Tuple{Value::Int(1)});
  EXPECT_EQ(ts[2], Tuple{Value::Int(3)});
}

// --- Database --------------------------------------------------------------

Database FigureOneDb() {
  // The Orders / Payments / Customers database of paper Figure 1.
  Database db;
  Relation orders({"oid", "title", "price"});
  orders.Add({Value::String("o1"), Value::String("Big Data"), Value::Int(30)});
  orders.Add({Value::String("o2"), Value::String("SQL"), Value::Int(35)});
  orders.Add({Value::String("o3"), Value::String("Logic"), Value::Int(50)});
  Relation payments({"cid", "oid"});
  payments.Add({Value::String("c1"), Value::String("o1")});
  payments.Add({Value::String("c2"), Value::String("o2")});
  Relation customers({"cid", "name"});
  customers.Add({Value::String("c1"), Value::String("John")});
  customers.Add({Value::String("c2"), Value::String("Mary")});
  db.Put("Orders", std::move(orders));
  db.Put("Payments", std::move(payments));
  db.Put("Customers", std::move(customers));
  return db;
}

TEST(DatabaseTest, ConstantsNullsActiveDomain) {
  Database db = FigureOneDb();
  EXPECT_TRUE(db.IsComplete());
  EXPECT_EQ(db.NullIds().size(), 0u);
  EXPECT_EQ(db.TotalSize(), 7u);

  // Introduce the paper's NULL into Payments.
  Relation* p = db.mutable_at("Payments");
  Relation p2({"cid", "oid"});
  p2.Add({Value::String("c1"), Value::String("o1")});
  p2.Add({Value::String("c2"), Value::Null(1)});
  *p = p2;
  EXPECT_FALSE(db.IsComplete());
  EXPECT_EQ(db.NullIds(), std::set<uint64_t>{1});
  EXPECT_EQ(db.ActiveDomain().size(), db.Constants().size() + 1);
}

TEST(DatabaseTest, GetMissingRelation) {
  Database db;
  EXPECT_EQ(db.Get("R").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, CoddifyMakesNullsDistinct) {
  Database db;
  Relation r({"a", "b"});
  r.Add({Value::Null(0), Value::Null(0)});
  r.Add({Value::Null(0), Value::Int(1)});
  db.Put("R", std::move(r));
  Database codd = db.CoddifyNulls(100);
  // Three null occurrences → three distinct ids.
  EXPECT_EQ(codd.NullIds().size(), 3u);
  EXPECT_EQ(codd.at("R").TotalSize(), 2u);
}

// --- Snapshot versioning ----------------------------------------------------

Relation OneInt(const std::string& attr, int64_t v) {
  Relation r({attr});
  r.Add({Value::Int(v)});
  return r;
}

TEST(DatabaseVersionTest, StampsAreFreshPerMutationAndZeroWhenAbsent) {
  Database db;
  EXPECT_EQ(db.Version("R"), 0u);
  EXPECT_EQ(db.Epoch(), 0u);

  db.Put("R", OneInt("x", 1));
  uint64_t v1 = db.Version("R");
  EXPECT_NE(v1, 0u);
  EXPECT_EQ(db.Epoch(), v1);

  // Replacing with *identical* rows still stamps a new state: stamps
  // fingerprint mutation history, and a fresh stamp can only cause a
  // cache miss, never a wrong hit.
  db.Put("R", OneInt("x", 1));
  uint64_t v2 = db.Version("R");
  EXPECT_NE(v2, v1);
  EXPECT_GT(db.Epoch(), v1);

  db.Put("S", OneInt("y", 2));
  EXPECT_EQ(db.Version("R"), v2) << "mutating S must not restamp R";

  ASSERT_TRUE(db.Drop("R").ok());
  EXPECT_EQ(db.Version("R"), 0u);
  EXPECT_EQ(db.Drop("R").code(), StatusCode::kNotFound);
}

TEST(DatabaseVersionTest, SnapshotPinsPreMutationState) {
  Database db;
  db.Put("R", OneInt("x", 1));
  Database snap = db.Snapshot();
  uint64_t pinned = snap.Version("R");

  db.Put("R", OneInt("x", 2));
  ASSERT_TRUE(db.Drop("S").code() == StatusCode::kNotFound);

  // The snapshot still sees the old rows and the old stamp.
  EXPECT_TRUE(snap.at("R").Contains(Tuple{Value::Int(1)}));
  EXPECT_EQ(snap.Version("R"), pinned);
  EXPECT_TRUE(db.at("R").Contains(Tuple{Value::Int(2)}));
  EXPECT_NE(db.Version("R"), pinned);

  // Copies behave like snapshots, and mutating the copy never writes back.
  Database copy = db;
  copy.Put("R", OneInt("x", 3));
  EXPECT_TRUE(db.at("R").Contains(Tuple{Value::Int(2)}));

  // mutable_at detaches: a snapshot taken before stays unaffected.
  Database before = db.Snapshot();
  uint64_t v_before = db.Version("R");
  Relation* r = db.mutable_at("R");
  ASSERT_NE(r, nullptr);
  r->Add({Value::Int(9)});
  EXPECT_NE(db.Version("R"), v_before);
  EXPECT_EQ(before.at("R").TotalSize(), 1u);
  EXPECT_EQ(db.at("R").TotalSize(), 2u);
}

TEST(DatabaseVersionTest, RelationsViewSurvivesSourceMutation) {
  Database db;
  db.Put("R", OneInt("x", 1));
  auto view = db.relations();
  db.Put("R", OneInt("x", 2));
  ASSERT_TRUE(db.Drop("R").ok());
  // The view pinned the instance it was created from.
  ASSERT_EQ(view.size(), 1u);
  for (const auto& [name, rel] : view) {
    EXPECT_EQ(name, "R");
    EXPECT_TRUE(rel.Contains(Tuple{Value::Int(1)}));
  }
}

TEST(DatabaseTxnTest, StagedReadsCommitAtomicallyWithTouched) {
  Database db;
  db.Put("A", OneInt("x", 1));
  db.Put("B", OneInt("y", 1));
  db.Put("C", OneInt("z", 1));
  uint64_t vc = db.Version("C");

  Database::Txn txn = db.Begin();
  txn.Put("A", OneInt("x", 2));
  ASSERT_TRUE(txn.Drop("B").ok());
  EXPECT_EQ(txn.Drop("B").code(), StatusCode::kNotFound)
      << "staged drops are visible to staged reads";
  Relation* a = txn.Mutable("A");
  ASSERT_NE(a, nullptr);
  a->Add({Value::Int(3)});
  EXPECT_EQ(txn.Mutable("B"), nullptr);
  EXPECT_TRUE(txn.Has("C"));

  // Nothing is visible before Commit.
  EXPECT_TRUE(db.at("A").Contains(Tuple{Value::Int(1)}));
  EXPECT_TRUE(db.Has("B"));

  std::vector<std::string> touched = txn.Touched();
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<std::string>{"A", "B"}));

  ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  EXPECT_TRUE(db.at("A").Contains(Tuple{Value::Int(2)}));
  EXPECT_TRUE(db.at("A").Contains(Tuple{Value::Int(3)}));
  EXPECT_FALSE(db.Has("B"));
  EXPECT_EQ(db.Version("C"), vc) << "untouched relations keep their stamp";

  // An empty transaction is a published no-op.
  uint64_t epoch = db.Epoch();
  ASSERT_TRUE(db.Commit(db.Begin()).ok());
  EXPECT_EQ(db.Epoch(), epoch);
}

// --- Valuation -------------------------------------------------------------

TEST(ValuationTest, ApplyAndIdentityOutsideDomain) {
  Valuation v;
  ASSERT_TRUE(v.Bind(1, Value::Int(9)).ok());
  EXPECT_EQ(v.Apply(Value::Null(1)), Value::Int(9));
  EXPECT_EQ(v.Apply(Value::Null(2)), Value::Null(2));
  EXPECT_EQ(v.Apply(Value::Int(5)), Value::Int(5));
}

TEST(ValuationTest, BindRejectsNullTarget) {
  Valuation v;
  EXPECT_FALSE(v.Bind(1, Value::Null(2)).ok());
}

TEST(ValuationTest, SetVsBagCollapse) {
  // R = {(⊥1), (1)} and v(⊥1) = 1: set semantics collapses to {(1)},
  // bag semantics adds multiplicities to (1)×2 — the two options of [42].
  Relation r({"x"});
  r.Add({Value::Null(1)});
  r.Add({Value::Int(1)});
  Valuation v;
  v.Set(1, Value::Int(1));
  Relation set = v.ApplySet(r);
  EXPECT_EQ(set.TotalSize(), 1u);
  EXPECT_EQ(set.Count(Tuple{Value::Int(1)}), 1u);
  Relation bag = v.ApplyBag(r);
  EXPECT_EQ(bag.Count(Tuple{Value::Int(1)}), 2u);
}

TEST(ValuationTest, ApplyDatabase) {
  Database db;
  Relation r({"x"});
  r.Add({Value::Null(1)});
  db.Put("R", std::move(r));
  Valuation v;
  v.Set(1, Value::Int(3));
  Database out = v.ApplySet(db);
  EXPECT_TRUE(out.IsComplete());
  EXPECT_TRUE(out.at("R").Contains(Tuple{Value::Int(3)}));
}

TEST(StatusTest, ToStringAndCodes) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status st = Status::InvalidArgument("bad");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad");
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace incdb
