// Tests for src/prob and src/constraints: µ_k counting, the 0–1 law
// (Theorem 4.10), conditional probabilities (Theorem 4.11) and the FD
// chase.

#include <gtest/gtest.h>

#include "constraints/chase.h"
#include "eval/eval.h"
#include "prob/prob.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

// The running example of §4.3: R = {1}, S = {⊥}, Q = R − S.
Database RMinusSDb() {
  Database db;
  Relation r({"x"}), s({"x"});
  r.Add({Value::Int(1)});
  s.Add({Value::Null(0)});
  db.Put("R", r);
  db.Put("S", s);
  return db;
}

AlgPtr RMinusS() { return Diff(Scan("R"), Scan("S")); }

TEST(MuKTest, DifferenceExampleConvergesToOne) {
  // µ_k(Q, D, (1)) = (k−1)/k: the only bad valuation maps ⊥ to 1.
  Database db = RMinusSDb();
  for (size_t k : {2, 3, 5, 10}) {
    auto mu = MuK(RMinusS(), db, Tuple{Value::Int(1)}, k);
    ASSERT_TRUE(mu.ok());
    EXPECT_EQ(mu->total, k);
    EXPECT_EQ(mu->support, k - 1);
  }
  // Theorem 4.10 limit: 1, matching naive membership.
  auto limit = MuLimit(RMinusS(), db, Tuple{Value::Int(1)});
  ASSERT_TRUE(limit.ok());
  EXPECT_DOUBLE_EQ(*limit, 1.0);
}

TEST(MuKTest, NonNaiveAnswerHasMuZeroLimit) {
  // The tuple (2): never an answer (2 ∉ R), support 0.
  Database db = RMinusSDb();
  auto mu = MuK(RMinusS(), db, Tuple{Value::Int(2)}, 5);
  ASSERT_TRUE(mu.ok());
  EXPECT_EQ(mu->support, 0u);
  auto limit = MuLimit(RMinusS(), db, Tuple{Value::Int(2)});
  ASSERT_TRUE(limit.ok());
  EXPECT_DOUBLE_EQ(*limit, 0.0);
}

TEST(MuKTest, NaiveAnswersDominateGenericValuations) {
  // The engine of Theorem 4.10: every "generic" valuation — injective,
  // avoiding the relevant constants — witnesses each naive answer, so
  // |Supp_k| ≥ (k−r)(k−r−1)···(k−r−n+1), and this fraction → 1.
  std::mt19937_64 rng(13);
  for (int round = 0; round < 6; ++round) {
    Database db = testing_util::RandomDatabase(rng, 2, 2, 2);
    size_t n = db.NullIds().size();
    for (const AlgPtr& q : testing_util::QueryZoo()) {
      size_t r = db.Constants().size() + QueryConstants(q).size();
      size_t k = r + n + 2;
      auto naive = EvalSet(q, db);
      ASSERT_TRUE(naive.ok());
      for (const Tuple& t : naive->SortedTuples()) {
        auto mu = MuK(q, db, t, k);
        ASSERT_TRUE(mu.ok()) << q->ToString();
        uint64_t generic = 1;
        for (size_t i = 0; i < n; ++i) generic *= (k - r - i);
        EXPECT_GE(mu->support, generic)
            << q->ToString() << " tuple " << t.ToString();
        EXPECT_LE(mu->support, mu->total);
        auto acp = AlmostCertainlyTrue(q, db, t);
        ASSERT_TRUE(acp.ok());
        EXPECT_TRUE(*acp);
      }
    }
  }
}

TEST(MuKTest, BudgetEnforced) {
  Database db;
  Relation r({"x"});
  for (int i = 0; i < 12; ++i) r.Add({Value::Null(i)});
  db.Put("R", r);
  ProbOptions opts;
  opts.max_valuations = 100;
  auto mu = MuK(Scan("R"), db, Tuple{Value::Int(1)}, 5, opts);
  EXPECT_FALSE(mu.ok());
  EXPECT_EQ(mu.status().code(), StatusCode::kResourceExhausted);
}

// --- Conditional probabilities (§4.3) -------------------------------------------

TEST(ConditionalTest, InclusionConstraintGivesOneHalf) {
  // T = {1, 2}, S = {⊥}, Σ: S ⊆ T, Q = T − S. The answer {1} appears
  // with probability 1/2 (⊥ ↦ 2), independent of k ≥ 2.
  Database db;
  Relation t({"x"}), s({"x"});
  t.Add({Value::Int(1)});
  t.Add({Value::Int(2)});
  s.Add({Value::Null(0)});
  db.Put("T", t);
  db.Put("S", s);
  ConstraintSet sigma;
  sigma.inds.push_back(IND{"S", {"x"}, "T", {"x"}});
  AlgPtr q = Diff(Scan("T"), Scan("S"));
  for (size_t k : {2, 4, 8}) {
    auto mu = MuKConditional(q, sigma, db, Tuple{Value::Int(1)}, k);
    ASSERT_TRUE(mu.ok());
    EXPECT_EQ(mu->total, 2u) << "only ⊥↦1 and ⊥↦2 satisfy S ⊆ T";
    EXPECT_EQ(mu->support, 1u);
    EXPECT_DOUBLE_EQ(mu->ratio(), 0.5);
  }
}

TEST(ConditionalTest, UnsatisfiableConstraintGivesZero) {
  // S ⊆ T with T empty: no valuation satisfies Σ; convention µ_k = 0.
  Database db;
  Relation t({"x"}), s({"x"});
  s.Add({Value::Null(0)});
  db.Put("T", t);
  db.Put("S", s);
  ConstraintSet sigma;
  sigma.inds.push_back(IND{"S", {"x"}, "T", {"x"}});
  auto mu = MuKConditional(Diff(Scan("T"), Scan("S")), sigma, db,
                           Tuple{Value::Int(1)}, 4);
  ASSERT_TRUE(mu.ok());
  EXPECT_EQ(mu->total, 0u);
  EXPECT_DOUBLE_EQ(mu->ratio(), 0.0);
}

TEST(ConditionalTest, FunctionalDependenciesAreZeroOne) {
  // With Σ only FDs, µ(Q|Σ) ∈ {0,1} and equals µ(Q, DΣ) on the chased
  // database. R(k, v) with FD k → v and tuples (1, ⊥1), (1, 5) forces
  // ⊥1 = 5 under Σ; the null also occurs in S.
  Database db;
  Relation r({"k", "v"});
  r.Add({Value::Int(1), Value::Null(1)});
  r.Add({Value::Int(1), Value::Int(5)});
  Relation s({"x"});
  s.Add({Value::Null(1)});
  db.Put("R", r);
  db.Put("S", s);
  std::vector<FD> fds = {FD{"R", {"k"}, {"v"}}};
  // Q: σ_{x=5}(S). Unconditionally, (5) is an answer only when v(⊥1)=5 —
  // probability 0. Under the FD, ⊥1 = 5 is forced: probability 1.
  AlgPtr q = Select(Scan("S"), CEqc("x", Value::Int(5)));
  auto mu = MuLimitConditionalFDs(q, fds, db, Tuple{Value::Int(5)});
  ASSERT_TRUE(mu.ok());
  EXPECT_DOUBLE_EQ(*mu, 1.0);
  auto unconditional = MuLimit(q, db, Tuple{Value::Int(5)});
  ASSERT_TRUE(unconditional.ok());
  EXPECT_DOUBLE_EQ(*unconditional, 0.0);
  // And the conditional limit matches exhaustive conditional counting.
  ConstraintSet sigma;
  sigma.fds = fds;
  auto muk = MuKConditional(q, sigma, db, Tuple{Value::Int(5)}, 6);
  ASSERT_TRUE(muk.ok());
  EXPECT_DOUBLE_EQ(muk->ratio(), 1.0);
}

// --- FD chase --------------------------------------------------------------------

TEST(ChaseTest, EquatesNullWithConstant) {
  Database db;
  Relation r({"k", "v"});
  r.Add({Value::Int(1), Value::Null(1)});
  r.Add({Value::Int(1), Value::Int(5)});
  db.Put("R", r);
  auto res = ChaseFDs(db, {FD{"R", {"k"}, {"v"}}});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->success);
  EXPECT_EQ(res->db.at("R").TotalSize(), 1u);  // tuples merged
  EXPECT_TRUE(res->db.at("R").Contains(Tuple{Value::Int(1), Value::Int(5)}));
}

TEST(ChaseTest, MergesTwoNulls) {
  Database db;
  Relation r({"k", "v"});
  r.Add({Value::Int(1), Value::Null(1)});
  r.Add({Value::Int(1), Value::Null(2)});
  db.Put("R", r);
  auto res = ChaseFDs(db, {FD{"R", {"k"}, {"v"}}});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->success);
  EXPECT_EQ(res->db.NullIds().size(), 1u);
  EXPECT_EQ(res->db.at("R").TotalSize(), 1u);
}

TEST(ChaseTest, ConstantConflictFails) {
  Database db;
  Relation r({"k", "v"});
  r.Add({Value::Int(1), Value::Int(4)});
  r.Add({Value::Int(1), Value::Int(5)});
  db.Put("R", r);
  auto res = ChaseFDs(db, {FD{"R", {"k"}, {"v"}}});
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->success);
}

TEST(ChaseTest, TransitiveChaining) {
  // FD fires transitively: k→v equates ⊥1 with ⊥2, then a second relation
  // sharing ⊥1 sees the substitution.
  Database db;
  Relation r({"k", "v"});
  r.Add({Value::Int(1), Value::Null(1)});
  r.Add({Value::Int(1), Value::Null(2)});
  Relation s({"w"});
  s.Add({Value::Null(1)});
  s.Add({Value::Null(2)});
  db.Put("R", r);
  db.Put("S", s);
  auto res = ChaseFDs(db, {FD{"R", {"k"}, {"v"}}});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->success);
  EXPECT_EQ(res->db.at("S").TotalSize(), 1u);  // ⊥1 = ⊥2 collapsed in S too
}

// --- Constraint checks --------------------------------------------------------------

TEST(ConstraintTest, FDSatisfaction) {
  Database db;
  Relation r({"k", "v"});
  r.Add({Value::Int(1), Value::Int(2)});
  r.Add({Value::Int(2), Value::Int(2)});
  db.Put("R", r);
  auto ok = Satisfies(db, FD{"R", {"k"}, {"v"}});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  Relation bad = db.at("R");
  bad.Add({Value::Int(1), Value::Int(9)});
  db.Put("R", bad);
  auto notok = Satisfies(db, FD{"R", {"k"}, {"v"}});
  ASSERT_TRUE(notok.ok());
  EXPECT_FALSE(*notok);
}

TEST(ConstraintTest, INDSatisfaction) {
  Database db;
  Relation s({"x"}), t({"y"});
  s.Add({Value::Int(1)});
  t.Add({Value::Int(1)});
  t.Add({Value::Int(2)});
  db.Put("S", s);
  db.Put("T", t);
  auto ok = Satisfies(db, IND{"S", {"x"}, "T", {"y"}});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  auto rev = Satisfies(db, IND{"T", {"y"}, "S", {"x"}});
  ASSERT_TRUE(rev.ok());
  EXPECT_FALSE(*rev);
}

TEST(ConstraintTest, UnknownRelationOrAttributeErrors) {
  Database db;
  db.Put("R", Relation({"a"}));
  EXPECT_FALSE(Satisfies(db, FD{"Nope", {"a"}, {"a"}}).ok());
  EXPECT_FALSE(Satisfies(db, FD{"R", {"zz"}, {"a"}}).ok());
}

TEST(MuKSeriesTest, MatchesPointwiseComputation) {
  Database db = RMinusSDb();
  std::vector<size_t> ks = {2, 3, 5, 8};
  auto series = MuKSeries(RMinusS(), db, Tuple{Value::Int(1)}, ks);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    auto point = MuK(RMinusS(), db, Tuple{Value::Int(1)}, ks[i]);
    ASSERT_TRUE(point.ok());
    EXPECT_EQ((*series)[i].support, point->support);
    EXPECT_EQ((*series)[i].total, point->total);
  }
}

}  // namespace
}  // namespace incdb
