// Tests for src/approx: the (Qt, Qf) scheme of Fig. 2(a) and the (Q+, Q?)
// scheme of Fig. 2(b), against the theorems of §4.2:
//  * Theorem 4.6: Qt(D) ⊆ cert⊥(Q,D), Qf(D) ⊆ cert⊥(¬Q,D), Qt = Q on
//    complete databases;
//  * Theorem 4.7: Q+(D) ⊆ cert⊥(Q,D) and v(Q+(D)) ⊆ Q(v(D)) ⊆ v(Q?(D));
//  * Theorem 4.8: bag bounds #(ā,Q+(D)) ≤ □Q(D,ā) ≤ #(ā,Q?(D)).

#include <gtest/gtest.h>

#include "approx/approx.h"
#include "certain/certain.h"
#include "certain/valuation_family.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;
using testing_util::QueryZoo;
using testing_util::RandomDatabase;

// --- Structure of the translations -------------------------------------------

TEST(TranslateTest, BaseRelationIsItself) {
  Database db = FigureOne(true);
  auto plus = TranslatePlus(Scan("Orders"), db);
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ((*plus)->ToString(), "Orders");
  auto maybe = TranslateMaybe(Scan("Orders"), db);
  ASSERT_TRUE(maybe.ok());
  EXPECT_EQ((*maybe)->ToString(), "Orders");
}

TEST(TranslateTest, DifferenceBecomesUnificationAntijoin) {
  Database db = FigureOne(true);
  AlgPtr q = Diff(Project(Scan("Orders"), {"oid"}),
                  Rename(Project(Scan("Payments"), {"oid"}), {"oid"}));
  auto plus = TranslatePlus(q, db);
  ASSERT_TRUE(plus.ok());
  EXPECT_NE((*plus)->ToString().find("⋉⇑"), std::string::npos);
}

TEST(TranslateTest, Fig2aUsesDomProducts) {
  Database db = FigureOne(true);
  AlgPtr q = Diff(Project(Scan("Orders"), {"oid"}),
                  Rename(Project(Scan("Payments"), {"oid"}), {"oid"}));
  auto qt = TranslateCertTrue(q, db);
  ASSERT_TRUE(qt.ok());
  EXPECT_NE((*qt)->ToString().find("Dom"), std::string::npos);
}

TEST(TranslateTest, RejectsNonCoreOperators) {
  Database db;
  db.Put("R", Relation({"a", "b"}));
  db.Put("S", Relation({"b"}));
  auto res = TranslatePlus(Division(Scan("R"), Scan("S")), db);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnsupported);
}

TEST(TranslateTest, IntersectionIsRewrittenViaDifference) {
  Database db;
  Relation r({"x"}), s({"x"});
  r.Add({Value::Int(1)});
  s.Add({Value::Int(1)});
  db.Put("R", r);
  db.Put("S", s);
  auto prepared = PrepareForTranslation(Intersect(Scan("R"), Scan("S")), db);
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(IsCoreGrammar(*prepared));
  auto plus = TranslatePlus(Intersect(Scan("R"), Scan("S")), db);
  ASSERT_TRUE(plus.ok());
}

// --- Figure 1 behaviour -------------------------------------------------------

TEST(ApproxFig1Test, UnpaidOrdersPlusIsEmptyAndMaybeKeepsAll) {
  Database db = FigureOne(true);
  AlgPtr q = Diff(Project(Scan("Orders"), {"oid"}),
                  Rename(Project(Scan("Payments"), {"oid"}), {"oid"}));
  auto plus = EvalPlus(q, db);
  ASSERT_TRUE(plus.ok());
  EXPECT_TRUE(plus->Empty());  // no certainly-unpaid order
  auto maybe = EvalMaybe(q, db);
  ASSERT_TRUE(maybe.ok());
  // o2 and o3 are possibly unpaid (o1 is definitely paid).
  EXPECT_EQ(maybe->SortedTuples(),
            (std::vector<Tuple>{Tuple{Value::String("o2")},
                                Tuple{Value::String("o3")}}));
}

TEST(ApproxFig1Test, TautologySelectionRecoveredByPlus) {
  // Q+ returns {c1, c2} where SQL returned only {c1}: the θ* translation
  // of the disjunction keeps the null row via the possible branch... and
  // here both rows are certain.
  Database db = FigureOne(true);
  AlgPtr q = Project(Select(Scan("Payments"),
                            COr(CEqc("oid", Value::String("o2")),
                                CNeqc("oid", Value::String("o2")))),
                     {"cid"});
  auto plus = EvalPlus(q, db);
  ASSERT_TRUE(plus.ok());
  // (A≠c)* demands const(A), so the ⊥ row is *not* certain under Q+ —
  // the approximation is allowed to miss it (it under-approximates).
  auto cert = CertWithNulls(q, db);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(plus->SubBagOf(*cert));
  EXPECT_TRUE(plus->Contains(Tuple{Value::String("c1")}));
}

// --- Theorem 4.7: correctness guarantees (property tests) ---------------------

class SchemeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchemeProperty, PlusIsSubsetOfCertAndSandwich) {
  std::mt19937_64 rng(GetParam());
  Database db = RandomDatabase(rng, 3, 3, 2);
  std::set<uint64_t> ids = db.NullIds();
  std::vector<uint64_t> nulls(ids.begin(), ids.end());
  for (const AlgPtr& q : QueryZoo()) {
    auto plus = EvalPlus(q, db);
    auto maybe = EvalMaybe(q, db);
    auto cert = CertWithNulls(q, db);
    ASSERT_TRUE(plus.ok() && maybe.ok() && cert.ok()) << q->ToString();
    // Q+(D) ⊆ cert⊥(Q, D).
    EXPECT_TRUE(plus->SubBagOf(*cert))
        << q->ToString() << "\n Q+: " << plus->ToString()
        << "\n cert⊥: " << cert->ToString();
    // Sandwich (5): v(Q+(D)) ⊆ Q(v(D)) ⊆ v(Q?(D)) for every valuation v.
    std::vector<Value> consts = FamilyConstants(db, QueryConstants(q));
    Status st = ForEachValuation(
        nulls, consts, 200000, [&](const Valuation& v) {
          auto ans = EvalSet(q, v.ApplySet(db));
          EXPECT_TRUE(ans.ok());
          for (const Tuple& t : plus->SortedTuples()) {
            EXPECT_TRUE(ans->Contains(v.Apply(t)))
                << "false positive in Q+ for " << q->ToString();
          }
          Relation vmaybe = v.ApplySet(*maybe);
          for (const Tuple& t : ans->SortedTuples()) {
            EXPECT_TRUE(vmaybe.Contains(t))
                << "Q? missed possible answer for " << q->ToString();
          }
          return !::testing::Test::HasFailure();
        });
    ASSERT_TRUE(st.ok());
    if (::testing::Test::HasFailure()) return;
  }
}

TEST_P(SchemeProperty, Fig2aSoundAndFig2bEquallyOrMorePrecise) {
  std::mt19937_64 rng(GetParam() + 1000);
  Database db = RandomDatabase(rng, 3, 3, 2);
  EvalOptions big;
  big.max_tuples = 5'000'000;
  for (const AlgPtr& q : QueryZoo()) {
    auto qt = EvalCertTrue(q, db, big);
    auto cert = CertWithNulls(q, db);
    ASSERT_TRUE(cert.ok());
    if (!qt.ok()) {
      // Dom-product blow-up is expected for some shapes (that is E2).
      EXPECT_EQ(qt.status().code(), StatusCode::kResourceExhausted)
          << qt.status().ToString();
      continue;
    }
    // Theorem 4.6: Qt(D) ⊆ cert⊥(Q, D).
    EXPECT_TRUE(qt->SubBagOf(*cert))
        << q->ToString() << "\n Qt: " << qt->ToString()
        << "\n cert⊥: " << cert->ToString();
  }
}

TEST_P(SchemeProperty, QfIsSubsetOfCertainlyFalse) {
  std::mt19937_64 rng(GetParam() + 2000);
  Database db = RandomDatabase(rng, 2, 2, 1);
  std::set<uint64_t> ids = db.NullIds();
  std::vector<uint64_t> nulls(ids.begin(), ids.end());
  EvalOptions big;
  big.max_tuples = 5'000'000;
  for (const AlgPtr& q : QueryZoo()) {
    auto qf = EvalCertFalse(q, db, big);
    if (!qf.ok()) {
      EXPECT_EQ(qf.status().code(), StatusCode::kResourceExhausted);
      continue;
    }
    // Every tuple of Qf is certainly absent from the answer: for every
    // valuation v, v(t) ∉ Q(v(D)).
    std::vector<Value> consts = FamilyConstants(db, QueryConstants(q));
    Status st = ForEachValuation(
        nulls, consts, 100000, [&](const Valuation& v) {
          auto ans = EvalSet(q, v.ApplySet(db));
          EXPECT_TRUE(ans.ok());
          for (const Tuple& t : qf->SortedTuples()) {
            EXPECT_FALSE(ans->Contains(v.Apply(t)))
                << "Qf contains a possible answer for " << q->ToString();
          }
          return !::testing::Test::HasFailure();
        });
    ASSERT_TRUE(st.ok());
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Complete databases: no loss ----------------------------------------------

TEST(ApproxCompleteTest, PlusAndMaybeEqualQueryOnCompleteDb) {
  // Theorem 4.6/4.7: on complete databases the schemes lose nothing.
  std::mt19937_64 rng(17);
  for (int round = 0; round < 10; ++round) {
    Database db = RandomDatabase(rng, 4, 4, /*n_nulls=*/0);
    for (const AlgPtr& q : QueryZoo()) {
      auto plain = EvalSet(q, db);
      auto plus = EvalPlus(q, db);
      auto maybe = EvalMaybe(q, db);
      ASSERT_TRUE(plain.ok() && plus.ok() && maybe.ok());
      EXPECT_TRUE(plain->SameRows(*plus)) << q->ToString();
      EXPECT_TRUE(plain->SameRows(*maybe)) << q->ToString();
    }
  }
}

// --- Theorem 4.8: bag bounds ----------------------------------------------------

TEST(ApproxBagTest, PlusAndMaybeBracketMinimalMultiplicity) {
  std::mt19937_64 rng(23);
  for (int round = 0; round < 6; ++round) {
    Database db = RandomDatabase(rng, 3, 3, 2);
    for (const AlgPtr& q : QueryZoo()) {
      auto plus_q = TranslatePlus(q, db);
      auto maybe_q = TranslateMaybe(q, db);
      ASSERT_TRUE(plus_q.ok() && maybe_q.ok());
      auto plus = EvalBag(*plus_q, db);
      auto maybe = EvalBag(*maybe_q, db);
      ASSERT_TRUE(plus.ok() && maybe.ok());
      // Probe: every tuple appearing in Q?(D) (superset of candidates).
      for (const Tuple& t : maybe->SortedTuples()) {
        auto bounds = BagMultiplicityBounds(q, db, t);
        ASSERT_TRUE(bounds.ok());
        EXPECT_LE(plus->Count(t), bounds->min)
            << q->ToString() << " tuple " << t.ToString();
        EXPECT_LE(bounds->min, maybe->Count(t))
            << q->ToString() << " tuple " << t.ToString();
      }
      // And tuples of Q+ (must also satisfy the bracket).
      for (const Tuple& t : plus->SortedTuples()) {
        auto bounds = BagMultiplicityBounds(q, db, t);
        ASSERT_TRUE(bounds.ok());
        EXPECT_LE(plus->Count(t), bounds->min) << q->ToString();
      }
    }
  }
}

TEST(TranslateTest, DistinctAndSqlSugarAreHandled) {
  // The SQL translator emits Distinct and [NOT] IN nodes; the Fig. 2
  // pipeline must accept them via PrepareForTranslation.
  Database db = FigureOne(true);
  AlgPtr q = Distinct(NotInPredicate(
      Project(Scan("Orders"), {"oid"}),
      Rename(Project(Scan("Payments"), {"oid"}), {"poid"}), {"oid"},
      {"poid"}, CTrue()));
  auto prepared = PrepareForTranslation(q, db);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE(IsCoreGrammar(*prepared));
  auto plus = EvalPlus(q, db);
  ASSERT_TRUE(plus.ok());
  EXPECT_TRUE(plus->Empty());  // nothing certainly unpaid under the NULL
}

}  // namespace
}  // namespace incdb
