// Property-style sweeps over algebraic laws the implementation relies on:
// Kleene/L6v logic identities, negation propagation, the θ* guard
// property, unifiability as an existential statement, and bag-algebra
// identities. These are the invariants behind the paper's theorems, so
// they get exhaustive or randomized coverage of their own.

#include <gtest/gtest.h>

#include <random>

#include "algebra/builder.h"
#include "certain/certain.h"
#include "certain/valuation_family.h"
#include "eval/eval.h"
#include "logic/kleene.h"
#include "logic/sixvalued.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

const TV3 kAll3[] = {TV3::kF, TV3::kU, TV3::kT};
const TV6 kAll6[] = {TV6::kF, TV6::kSF, TV6::kS,
                     TV6::kU, TV6::kST, TV6::kT};

// --- Kleene laws (exhaustive) ------------------------------------------------

TEST(KleeneLawsTest, CommutativityAndAssociativity) {
  for (TV3 a : kAll3) {
    for (TV3 b : kAll3) {
      EXPECT_EQ(Kleene::And(a, b), Kleene::And(b, a));
      EXPECT_EQ(Kleene::Or(a, b), Kleene::Or(b, a));
      for (TV3 c : kAll3) {
        EXPECT_EQ(Kleene::And(Kleene::And(a, b), c),
                  Kleene::And(a, Kleene::And(b, c)));
        EXPECT_EQ(Kleene::Or(Kleene::Or(a, b), c),
                  Kleene::Or(a, Kleene::Or(b, c)));
      }
    }
  }
}

TEST(KleeneLawsTest, DistributivityAndAbsorption) {
  // The properties Theorem 5.3 says database optimizers need.
  for (TV3 a : kAll3) {
    EXPECT_EQ(Kleene::And(a, a), a);  // idempotence
    EXPECT_EQ(Kleene::Or(a, a), a);
    for (TV3 b : kAll3) {
      EXPECT_EQ(Kleene::And(a, Kleene::Or(a, b)), a);  // absorption
      EXPECT_EQ(Kleene::Or(a, Kleene::And(a, b)), a);
      for (TV3 c : kAll3) {
        EXPECT_EQ(Kleene::And(a, Kleene::Or(b, c)),
                  Kleene::Or(Kleene::And(a, b), Kleene::And(a, c)));
        EXPECT_EQ(Kleene::Or(a, Kleene::And(b, c)),
                  Kleene::And(Kleene::Or(a, b), Kleene::Or(a, c)));
      }
    }
  }
}

TEST(KleeneLawsTest, DeMorganAndDoubleNegation) {
  for (TV3 a : kAll3) {
    EXPECT_EQ(Kleene::Not(Kleene::Not(a)), a);
    for (TV3 b : kAll3) {
      EXPECT_EQ(Kleene::Not(Kleene::And(a, b)),
                Kleene::Or(Kleene::Not(a), Kleene::Not(b)));
      EXPECT_EQ(Kleene::Not(Kleene::Or(a, b)),
                Kleene::And(Kleene::Not(a), Kleene::Not(b)));
    }
  }
}

TEST(KleeneLawsTest, ExcludedMiddleFailsOnU) {
  // u ∨ ¬u = u — the reason the tautology query misbehaves in SQL.
  EXPECT_EQ(Kleene::Or(TV3::kU, Kleene::Not(TV3::kU)), TV3::kU);
}

// --- L6v laws (exhaustive on the derived tables) --------------------------------

TEST(SixLawsTest, CommutativityAndDeMorgan) {
  for (TV6 a : kAll6) {
    EXPECT_EQ(Six::Not(Six::Not(a)), a);
    for (TV6 b : kAll6) {
      EXPECT_EQ(Six::And(a, b), Six::And(b, a));
      EXPECT_EQ(Six::Or(a, b), Six::Or(b, a));
      EXPECT_EQ(Six::Not(Six::And(a, b)),
                Six::Or(Six::Not(a), Six::Not(b)));
    }
  }
}

TEST(SixLawsTest, ConnectivesRespectKnowledgeOrder) {
  // The §5.1 condition (2) for L6v — the property that guarantees
  // almost-certainly-true answers, which ↑ (not part of L6v) breaks.
  for (TV6 a : kAll6) {
    for (TV6 a2 : kAll6) {
      if (!KnowledgeLeq(a, a2)) continue;
      EXPECT_TRUE(KnowledgeLeq(Six::Not(a), Six::Not(a2)))
          << ToString(a) << " " << ToString(a2);
      for (TV6 b : kAll6) {
        for (TV6 b2 : kAll6) {
          if (!KnowledgeLeq(b, b2)) continue;
          EXPECT_TRUE(KnowledgeLeq(Six::And(a, b), Six::And(a2, b2)));
          EXPECT_TRUE(KnowledgeLeq(Six::Or(a, b), Six::Or(a2, b2)));
        }
      }
    }
  }
}

// --- Condition algebra (randomized) ----------------------------------------------

class CondProperty : public ::testing::TestWithParam<int> {
 protected:
  std::vector<std::string> attrs_{"a", "b", "c"};

  CondPtr RandomCond(std::mt19937_64& rng, int depth) {
    std::uniform_int_distribution<int> pick(0, depth > 0 ? 7 : 5);
    switch (pick(rng)) {
      case 0:
        return CEq("a", "b");
      case 1:
        return CNeq("b", "c");
      case 2:
        return CEqc("a", Value::Int(static_cast<int64_t>(rng() % 3)));
      case 3:
        return CNeqc("c", Value::Int(static_cast<int64_t>(rng() % 3)));
      case 4:
        return CIsNull("b");
      case 5:
        return CIsConst("a");
      case 6:
        return CAnd(RandomCond(rng, depth - 1), RandomCond(rng, depth - 1));
      default:
        return COr(RandomCond(rng, depth - 1), RandomCond(rng, depth - 1));
    }
  }

  Tuple RandomTuple(std::mt19937_64& rng) {
    auto value = [&]() -> Value {
      uint64_t v = rng() % 5;
      return v < 3 ? Value::Int(static_cast<int64_t>(v))
                   : Value::Null(v - 3);
    };
    return Tuple{value(), value(), value()};
  }
};

TEST_P(CondProperty, NegateIsKleeneNegation) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    CondPtr c = RandomCond(rng, 3);
    Tuple t = RandomTuple(rng);
    for (CondMode mode :
         {CondMode::kNaive, CondMode::kSql, CondMode::kUnif}) {
      auto f = CompileCond(c, attrs_, mode);
      auto nf = CompileCond(Negate(c), attrs_, mode);
      ASSERT_TRUE(f.ok() && nf.ok());
      EXPECT_EQ((*nf)(t), Kleene::Not((*f)(t)))
          << c->ToString() << " on " << t.ToString();
    }
  }
}

TEST_P(CondProperty, StarTranslationGuardsAllValuations) {
  // If θ* holds naively on t̄, then θ holds classically on v(t̄) for every
  // valuation v — the soundness core of the Fig. 2 σ-rules.
  std::mt19937_64 rng(GetParam() + 500);
  std::vector<Value> pool = {Value::Int(0), Value::Int(1), Value::Int(2),
                             Value::Int(7), Value::Int(8)};
  for (int i = 0; i < 100; ++i) {
    // θ over the =/≠ fragment only (the paper's source grammar).
    CondPtr c;
    do {
      c = RandomCond(rng, 2);
    } while (HasNullConstTest(c));
    Tuple t = RandomTuple(rng);
    auto star = CompileCond(StarTranslate(c), attrs_, CondMode::kNaive);
    auto plain = CompileCond(c, attrs_, CondMode::kNaive);
    ASSERT_TRUE(star.ok() && plain.ok());
    if ((*star)(t) != TV3::kT) continue;
    // Collect t's nulls and enumerate valuations.
    std::vector<uint64_t> nulls;
    for (const Value& v : t.values()) {
      if (v.is_null()) nulls.push_back(v.null_id());
    }
    std::sort(nulls.begin(), nulls.end());
    nulls.erase(std::unique(nulls.begin(), nulls.end()), nulls.end());
    Status st = ForEachValuation(nulls, pool, 100000, [&](const Valuation& v) {
      EXPECT_EQ((*plain)(v.Apply(t)), TV3::kT)
          << c->ToString() << " tuple " << t.ToString() << " val "
          << v.ToString();
      return !::testing::Test::HasFailure();
    });
    ASSERT_TRUE(st.ok());
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CondProperty, ::testing::Values(1, 2, 3, 4));

// --- Unifiability as an existential statement -------------------------------------

class UnifProperty : public ::testing::TestWithParam<int> {};

TEST_P(UnifProperty, UnifiableIffSomeValuationEquates) {
  std::mt19937_64 rng(GetParam());
  auto value = [&]() -> Value {
    uint64_t v = rng() % 6;
    return v < 3 ? Value::Int(static_cast<int64_t>(v)) : Value::Null(v - 3);
  };
  std::vector<Value> pool = {Value::Int(0), Value::Int(1), Value::Int(2),
                             Value::Int(10), Value::Int(11), Value::Int(12)};
  for (int i = 0; i < 150; ++i) {
    Tuple a{value(), value(), value()};
    Tuple b{value(), value(), value()};
    EXPECT_EQ(Unifiable(a, b), Unifiable(b, a));
    EXPECT_TRUE(Unifiable(a, a));
    std::vector<uint64_t> nulls;
    for (const Tuple* t : {&a, &b}) {
      for (const Value& v : t->values()) {
        if (v.is_null()) nulls.push_back(v.null_id());
      }
    }
    std::sort(nulls.begin(), nulls.end());
    nulls.erase(std::unique(nulls.begin(), nulls.end()), nulls.end());
    bool witnessed = false;
    Status st = ForEachValuation(nulls, pool, 1000000,
                                 [&](const Valuation& v) {
                                   if (v.Apply(a) == v.Apply(b)) {
                                     witnessed = true;
                                     return false;
                                   }
                                   return true;
                                 });
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(Unifiable(a, b), witnessed)
        << a.ToString() << " vs " << b.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifProperty, ::testing::Values(1, 2, 3));

// --- Bag algebra identities ---------------------------------------------------------

class BagLawsProperty : public ::testing::TestWithParam<int> {};

TEST_P(BagLawsProperty, StandardIdentities) {
  std::mt19937_64 rng(GetParam());
  Database db = testing_util::RandomDatabase(rng, 4, 3, 2);
  // Make the relations genuine bags.
  for (const char* name : {"R", "S"}) {
    Relation rel = db.at(name);
    for (const Tuple& t : rel.SortedTuples()) {
      if (rng() % 2) {
        Status st = rel.Insert(t, rng() % 3);
        ASSERT_TRUE(st.ok());
      }
    }
    db.Put(name, rel);
  }
  AlgPtr r = Scan("R");
  AlgPtr s = Rename(Scan("S"), {"R_a", "R_b"});
  AlgPtr t = Rename(Scan("S"), {"R_a", "R_b"});  // alias for S

  // (R − S) − S == R − (S ∪ S) under bag monus.
  auto lhs = EvalBag(Diff(Diff(r, s), t), db);
  auto rhs = EvalBag(Diff(r, Union(s, t)), db);
  ASSERT_TRUE(lhs.ok() && rhs.ok());
  EXPECT_TRUE(lhs->SameRows(*rhs));

  // R ∩ S == R − (R − S) under bags.
  auto inter = EvalBag(Intersect(r, s), db);
  auto diff2 = EvalBag(Diff(r, Diff(r, s)), db);
  ASSERT_TRUE(inter.ok() && diff2.ok());
  EXPECT_TRUE(inter->SameRows(*diff2));

  // Union is commutative and associative on multiplicities.
  auto u1 = EvalBag(Union(r, s), db);
  auto u2 = EvalBag(Union(s, r), db);
  ASSERT_TRUE(u1.ok() && u2.ok());
  EXPECT_TRUE(u1->SameRows(*u2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BagLawsProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Evaluator fast paths are semantics-preserving ----------------------------------

class FastPathProperty : public ::testing::TestWithParam<int> {};

TEST_P(FastPathProperty, TogglesNeverChangeAnswers) {
  std::mt19937_64 rng(GetParam());
  Database db = testing_util::RandomDatabase(rng, 4, 3, 2);
  EvalOptions plain;
  plain.enable_hash_join = false;
  plain.enable_or_expansion = false;
  plain.enable_projection_fusion = false;
  plain.enable_unify_index = false;
  for (const AlgPtr& q : testing_util::QueryZoo()) {
    using EvalFn = StatusOr<Relation> (*)(const AlgPtr&, const Database&,
                                          const EvalOptions&);
    for (EvalFn eval : {EvalFn(EvalSet), EvalFn(EvalSql)}) {
      auto fast = eval(q, db, EvalOptions{});
      auto slow = eval(q, db, plain);
      ASSERT_TRUE(fast.ok() && slow.ok()) << q->ToString();
      EXPECT_TRUE(fast->SameRows(*slow)) << q->ToString();
    }
    auto fast_bag = EvalBag(q, db, EvalOptions{});
    auto slow_bag = EvalBag(q, db, plain);
    ASSERT_TRUE(fast_bag.ok() && slow_bag.ok());
    EXPECT_TRUE(fast_bag->SameRows(*slow_bag)) << q->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Certain answers: brute-force possible worlds vs the lifted evaluator -----

/// Constant pool for the brute force, built without FamilyConstants: every
/// constant in the database or the query, plus n+1 fresh integers chosen
/// past the largest int seen (n = number of distinct nulls). Genericity of
/// the zoo queries makes this pool sufficient: any valuation is isomorphic
/// to one over it.
std::vector<Value> BruteForcePool(const Database& db, const AlgPtr& q) {
  std::vector<Value> pool;
  int64_t max_int = 0;
  auto add = [&](const Value& v) {
    if (!v.is_const()) return;
    if (v.kind() == ValueKind::kInt && v.as_int() > max_int) {
      max_int = v.as_int();
    }
    if (std::find(pool.begin(), pool.end(), v) == pool.end()) {
      pool.push_back(v);
    }
  };
  for (const auto& [name, rel] : db.relations()) {
    for (const auto& [t, c] : rel.rows()) {
      for (const Value& v : t.values()) add(v);
    }
  }
  for (const Value& v : QueryConstants(q)) add(v);
  size_t n_nulls = db.NullIds().size();
  for (size_t i = 0; i <= n_nulls; ++i) {
    pool.push_back(Value::Int(max_int + 1 + static_cast<int64_t>(i)));
  }
  return pool;
}

/// cert⊥ computed from first principles, independently of the production
/// machinery in src/certain: candidates are the naive answers (a bijective
/// valuation onto fresh constants witnesses that a certain tuple must be
/// one), and a candidate t̄ survives iff v(t̄) ∈ Q(v(D)) in every possible
/// world v(D), enumerating all pool^nulls valuations by hand — not via
/// FamilyConstants/ForEachValuation, which are exactly what CertWithNulls
/// uses and what this oracle cross-checks.
StatusOr<Relation> BruteForceCertWithNulls(const AlgPtr& q,
                                           const Database& db) {
  auto naive = EvalSet(q, db);
  if (!naive.ok()) return naive;
  std::vector<Value> pool = BruteForcePool(db, q);
  std::set<uint64_t> null_set = db.NullIds();
  std::vector<uint64_t> nulls(null_set.begin(), null_set.end());
  Relation out(naive->attrs());
  for (const Tuple& t : naive->SortedTuples()) {
    bool certain = true;
    // Odometer over assignments nulls -> pool.
    std::vector<size_t> digits(nulls.size(), 0);
    while (certain) {
      Valuation v;
      for (size_t i = 0; i < nulls.size(); ++i) {
        v.Set(nulls[i], pool[digits[i]]);
      }
      auto world = EvalSet(q, v.ApplySet(db));
      if (!world.ok()) return world.status();
      if (!world->Contains(v.Apply(t))) certain = false;
      size_t pos = 0;
      while (pos < digits.size() && ++digits[pos] == pool.size()) {
        digits[pos++] = 0;
      }
      if (pos == digits.size()) break;  // odometer wrapped: all worlds seen
    }
    if (certain) {
      Status st = out.Insert(t);
      if (!st.ok()) return st;
    }
  }
  return out;
}

class CertainRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(CertainRoundTripProperty, BruteForceAgreesWithLiftedEvaluator) {
  // Seeded so CI is deterministic: 20 RandomDatabase instances per seed,
  // every QueryZoo query on each.
  std::mt19937_64 rng(1000 + GetParam());
  for (int round = 0; round < 20; ++round) {
    // Keep the instances small: the brute force enumerates
    // |constants|^|nulls| possible worlds per candidate tuple.
    Database db = testing_util::RandomDatabase(rng, /*tuples_per_rel=*/3,
                                               /*n_constants=*/2,
                                               /*n_nulls=*/2);
    for (const AlgPtr& q : testing_util::QueryZoo()) {
      auto brute = BruteForceCertWithNulls(q, db);
      auto lifted = CertWithNulls(q, db);
      ASSERT_TRUE(brute.ok()) << q->ToString() << ": "
                              << brute.status().ToString();
      ASSERT_TRUE(lifted.ok()) << q->ToString() << ": "
                               << lifted.status().ToString();
      EXPECT_TRUE(brute->SameRows(*lifted))
          << q->ToString() << " on round " << round << ": brute "
          << brute->ToString() << " vs lifted " << lifted->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertainRoundTripProperty,
                         ::testing::Values(1, 2));

}  // namespace
}  // namespace incdb
