// Tests for src/certain: brute-force cert∩ (Def. 3.7), cert⊥ (Def. 3.9)
// and the bag multiplicity bounds □Q / ◇Q (eq. 6a/6b).

#include <gtest/gtest.h>

#include "certain/certain.h"
#include "certain/valuation_family.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;

// --- Valuation families -------------------------------------------------------

TEST(ValuationFamilyTest, FreshConstantsAreDisjoint) {
  Database db;
  Relation r({"x"});
  r.Add({Value::Int(5)});
  r.Add({Value::Null(1)});
  r.Add({Value::Null(2)});
  db.Put("R", r);
  auto consts = FamilyConstants(db, {Value::Int(7)});
  // {5, 7} plus n+1 = 3 fresh (8, 9, 10).
  ASSERT_EQ(consts.size(), 5u);
  std::set<Value> s(consts.begin(), consts.end());
  EXPECT_TRUE(s.count(Value::Int(5)));
  EXPECT_TRUE(s.count(Value::Int(7)));
  EXPECT_TRUE(s.count(Value::Int(8)));
  EXPECT_TRUE(s.count(Value::Int(9)));
  EXPECT_TRUE(s.count(Value::Int(10)));
}

TEST(ValuationFamilyTest, EnumeratesAllCombinations) {
  std::vector<Value> consts = {Value::Int(1), Value::Int(2), Value::Int(3)};
  size_t count = 0;
  std::set<std::string> distinct;
  Status st = ForEachValuation({10, 20}, consts, 1000, [&](const Valuation& v) {
    ++count;
    distinct.insert(v.ToString());
    return true;
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count, 9u);
  EXPECT_EQ(distinct.size(), 9u);
}

TEST(ValuationFamilyTest, BudgetEnforced) {
  std::vector<Value> consts;
  for (int i = 0; i < 10; ++i) consts.push_back(Value::Int(i));
  Status st = ForEachValuation({1, 2, 3, 4, 5, 6, 7}, consts, 1000,
                               [](const Valuation&) { return true; });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ValuationFamilyTest, EarlyStop) {
  std::vector<Value> consts = {Value::Int(1), Value::Int(2)};
  size_t count = 0;
  Status st = ForEachValuation({1, 2, 3}, consts, 1000,
                               [&](const Valuation&) { return ++count < 3; });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count, 3u);
}

// --- cert∩ and cert⊥ on the paper's examples ----------------------------------

TEST(CertainTest, SimpleMembershipKeepsNull) {
  // D = {R(⊥)}, Q = R: cert∩ = ∅ but cert⊥ = {⊥} (§3.2 discussion).
  Database db;
  Relation r({"x"});
  r.Add({Value::Null(1)});
  db.Put("R", r);
  auto ci = CertIntersection(Scan("R"), db);
  ASSERT_TRUE(ci.ok());
  EXPECT_TRUE(ci->Empty());
  auto cn = CertWithNulls(Scan("R"), db);
  ASSERT_TRUE(cn.ok());
  EXPECT_EQ(cn->SortedTuples(), std::vector<Tuple>{Tuple{Value::Null(1)}});
}

TEST(CertainTest, DifferenceAgainstNullIsUncertain) {
  // {1} − {⊥}: certain answers empty (⊥ might be 1).
  Database db;
  Relation r({"x"}), s({"x"});
  r.Add({Value::Int(1)});
  s.Add({Value::Null(0)});
  db.Put("R", r);
  db.Put("S", s);
  auto cn = CertWithNulls(Diff(Scan("R"), Scan("S")), db);
  ASSERT_TRUE(cn.ok());
  EXPECT_TRUE(cn->Empty());
}

TEST(CertainTest, TautologySelection) {
  // σ(oid = 'o2' ∨ oid ≠ 'o2')(Payments) is certain for every tuple: the
  // condition is a tautology in every possible world.
  Database db = FigureOne(true);
  AlgPtr q = Project(Select(Scan("Payments"),
                            COr(CEqc("oid", Value::String("o2")),
                                CNeqc("oid", Value::String("o2")))),
                     {"cid"});
  auto cn = CertWithNulls(q, db);
  ASSERT_TRUE(cn.ok());
  EXPECT_EQ(cn->SortedTuples(),
            (std::vector<Tuple>{Tuple{Value::String("c1")},
                                Tuple{Value::String("c2")}}));
}

TEST(CertainTest, UnpaidOrdersCertainlyEmpty) {
  // With the NULL, no order is certainly unpaid (§1).
  Database db = FigureOne(true);
  AlgPtr q = Diff(Project(Scan("Orders"), {"oid"}),
                  Rename(Project(Scan("Payments"), {"oid"}), {"oid"}));
  auto cn = CertWithNulls(q, db);
  ASSERT_TRUE(cn.ok());
  EXPECT_TRUE(cn->Empty());
}

TEST(CertainTest, CertIntersectionIsConstantPartOfCertWithNulls) {
  // Proposition 3.10: cert∩(Q,D) = cert⊥(Q,D) ∩ Const(D)^m.
  std::mt19937_64 rng(3);
  for (int round = 0; round < 10; ++round) {
    Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
    for (const AlgPtr& q : testing_util::QueryZoo()) {
      auto ci = CertIntersection(q, db);
      auto cn = CertWithNulls(q, db);
      ASSERT_TRUE(ci.ok() && cn.ok()) << q->ToString();
      Relation const_part(cn->attrs());
      for (const Tuple& t : cn->SortedTuples()) {
        if (t.AllConst()) {
          ASSERT_TRUE(const_part.Insert(t, 1).ok());
        }
      }
      EXPECT_TRUE(ci->SameRows(const_part))
          << q->ToString() << "\n cert∩: " << ci->ToString()
          << "\n cert⊥ const part: " << const_part.ToString();
    }
  }
}

TEST(CertainTest, ValuationsOfCertainAnswersAreAnswers) {
  // Proposition 3.10: v(cert⊥(Q,D)) ⊆ Q(v(D)) for every valuation.
  std::mt19937_64 rng(5);
  for (int round = 0; round < 5; ++round) {
    Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
    std::set<uint64_t> ids = db.NullIds();
    std::vector<uint64_t> nulls(ids.begin(), ids.end());
    for (const AlgPtr& q : testing_util::QueryZoo()) {
      auto cn = CertWithNulls(q, db);
      ASSERT_TRUE(cn.ok());
      std::vector<Value> consts = FamilyConstants(db, QueryConstants(q));
      Status st = ForEachValuation(
          nulls, consts, 100000, [&](const Valuation& v) {
            auto ans = EvalSet(q, v.ApplySet(db));
            EXPECT_TRUE(ans.ok());
            for (const Tuple& t : cn->SortedTuples()) {
              EXPECT_TRUE(ans->Contains(v.Apply(t)))
                  << q->ToString() << " tuple " << t.ToString() << " under "
                  << v.ToString();
            }
            return true;
          });
      ASSERT_TRUE(st.ok());
    }
  }
}

TEST(CertainTest, OwaRequiresPositiveQueries) {
  Database db = FigureOne(true);
  auto bad = CertWithNullsOwa(Diff(Scan("Orders"), Scan("Orders")), db);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsupported);
  auto good = CertWithNullsOwa(Project(Scan("Orders"), {"oid"}), db);
  EXPECT_TRUE(good.ok());
}

TEST(CertainTest, CompleteDatabaseCertEqualsEval) {
  Database db = FigureOne(false);
  for (const AlgPtr& q :
       {Project(Scan("Orders"), {"oid"}),
        Diff(Project(Scan("Orders"), {"oid"}),
             Rename(Project(Scan("Payments"), {"oid"}), {"oid"}))}) {
    auto cn = CertWithNulls(q, db);
    auto ev = EvalSet(q, db);
    ASSERT_TRUE(cn.ok() && ev.ok());
    EXPECT_TRUE(cn->SameRows(*ev));
  }
}

// --- Bag multiplicity bounds ---------------------------------------------------

TEST(BagBoundsTest, CollapsingValuationsChangeCounts) {
  // R = {(⊥1), (1)} as a bag; Q = R. #(1, Q(v(D))) is 2 when v(⊥1)=1 and
  // 1 otherwise: □ = 1, ◇ = 2 (multiplicities add up, [42]).
  Database db;
  Relation r({"x"});
  r.Add({Value::Null(1)});
  r.Add({Value::Int(1)});
  db.Put("R", r);
  auto bounds = BagMultiplicityBounds(Scan("R"), db, Tuple{Value::Int(1)});
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->min, 1u);
  EXPECT_EQ(bounds->max, 2u);
}

TEST(BagBoundsTest, DifferenceBounds) {
  // R = {1×2}, S = {⊥}: R−S has #1 = 1 if v(⊥)=1, else 2.
  Database db;
  Relation r({"x"}), s({"x"});
  r.Add({Value::Int(1)}, 2);
  s.Add({Value::Null(0)});
  db.Put("R", r);
  db.Put("S", s);
  auto bounds =
      BagMultiplicityBounds(Diff(Scan("R"), Scan("S")), db,
                            Tuple{Value::Int(1)});
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->min, 1u);
  EXPECT_EQ(bounds->max, 2u);
}

TEST(BagBoundsTest, CertainTupleHasPositiveMin) {
  Database db;
  Relation r({"x"});
  r.Add({Value::Int(7)}, 3);
  db.Put("R", r);
  auto bounds = BagMultiplicityBounds(Scan("R"), db, Tuple{Value::Int(7)});
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->min, 3u);
  EXPECT_EQ(bounds->max, 3u);
}

TEST(BagBoundsTest, TupleWithNullEvaluatesUnderValuation) {
  // □Q(D, ⊥1) for Q = R, R = {⊥1}: v(⊥1) ∈ v(R) always → min = max = 1.
  Database db;
  Relation r({"x"});
  r.Add({Value::Null(1)});
  db.Put("R", r);
  auto bounds = BagMultiplicityBounds(Scan("R"), db, Tuple{Value::Null(1)});
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->min, 1u);
  EXPECT_EQ(bounds->max, 1u);
}

// --- Explainability: counterexample worlds -----------------------------------

TEST(WhyNotCertainTest, ProducesFailingWorld) {
  // {1} − {⊥0}: (1) is a naive answer but not certain; the witness must
  // map ⊥0 to 1.
  Database db;
  Relation r({"x"}), s({"x"});
  r.Add({Value::Int(1)});
  s.Add({Value::Null(0)});
  db.Put("R", r);
  db.Put("S", s);
  AlgPtr q = Diff(Scan("R"), Scan("S"));
  auto why = WhyNotCertain(q, db, Tuple{Value::Int(1)});
  ASSERT_TRUE(why.ok());
  ASSERT_TRUE(why->has_value());
  const Valuation& v = **why;
  // Verify the witness actually refutes certainty.
  auto world = EvalSet(q, v.ApplySet(db));
  ASSERT_TRUE(world.ok());
  EXPECT_FALSE(world->Contains(v.Apply(Tuple{Value::Int(1)})));
  EXPECT_EQ(v.Lookup(0), Value::Int(1));
}

TEST(WhyNotCertainTest, CertainTupleHasNoWitness) {
  Database db;
  Relation r({"x"});
  r.Add({Value::Int(1)});
  db.Put("R", r);
  auto why = WhyNotCertain(Scan("R"), db, Tuple{Value::Int(1)});
  ASSERT_TRUE(why.ok());
  EXPECT_FALSE(why->has_value());
}

TEST(WhyNotCertainTest, AgreesWithCertWithNulls) {
  // For every naive answer: witness exists iff the tuple is not in cert⊥.
  std::mt19937_64 rng(83);
  for (int round = 0; round < 5; ++round) {
    Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
    for (const AlgPtr& q : testing_util::QueryZoo()) {
      auto naive = EvalSet(q, db);
      auto cert = CertWithNulls(q, db);
      ASSERT_TRUE(naive.ok() && cert.ok());
      for (const Tuple& t : naive->SortedTuples()) {
        auto why = WhyNotCertain(q, db, t);
        ASSERT_TRUE(why.ok());
        EXPECT_EQ(why->has_value(), !cert->Contains(t))
            << q->ToString() << " " << t.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace incdb
