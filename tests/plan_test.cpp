// Tests for the physical-plan layer (src/eval/plan.h): every rewrite pass
// on/off must produce identical relations across all three evaluation
// modes on the desugar/chase corpus; compiled plans have the expected
// shape (a conjunctive query joins with exactly one HashJoin and no
// NLJoin); leaf scans borrow the database rows instead of copying; and the
// parallel partitioned hash join agrees with the sequential one.

#include <gtest/gtest.h>

#include <random>

#include "algebra/builder.h"
#include "eval/eval.h"
#include "eval/plan.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;
using testing_util::QueryZoo;
using testing_util::RandomDatabase;

/// The corpus the optimizer must be invisible on: the sugar-free QueryZoo,
/// the sugared desugar-corpus shapes, and ⋉⇑ (the unify-index pass's only
/// consumer), all over the RandomDatabase schema.
std::vector<AlgPtr> OptimizerCorpus() {
  std::vector<AlgPtr> corpus = QueryZoo();
  AlgPtr r = Scan("R");
  AlgPtr s = Scan("S");
  AlgPtr t = Scan("T");
  corpus.push_back(Join(r, s, CEq("R_b", "S_a")));
  corpus.push_back(Semijoin(r, s, CEq("R_a", "S_a")));
  corpus.push_back(Antijoin(r, s, CEq("R_a", "S_a")));
  corpus.push_back(InPredicate(Project(r, {"R_a"}), t, {"R_a"}, {"T_a"},
                               CTrue()));
  corpus.push_back(NotInPredicate(Project(r, {"R_a"}), t, {"R_a"}, {"T_a"},
                                  CTrue()));
  corpus.push_back(AntijoinUnify(r, s));
  corpus.push_back(Distinct(Project(r, {"R_a"})));
  // Join with a one-sided conjunct (exercises selection pushdown) and a
  // disjunctive join condition (exercises OR-expansion).
  corpus.push_back(Select(Product(r, Rename(s, {"S_x", "S_y"})),
                          CAnd(CEq("R_b", "S_x"),
                               CNeqc("R_a", Value::Int(1)))));
  corpus.push_back(Project(
      Select(Product(r, Rename(s, {"S_x", "S_y"})),
             COr(CEq("R_b", "S_x"), CIsNull("S_y"))),
      {"R_a", "S_y"}));
  return corpus;
}

std::vector<std::pair<const char*, EvalOptions>> ToggleConfigs() {
  std::vector<std::pair<const char*, EvalOptions>> configs;
  EvalOptions base;
  configs.push_back({"all passes", base});
  {
    EvalOptions o = base;
    o.enable_hash_join = false;
    configs.push_back({"- hash join", o});
  }
  {
    EvalOptions o = base;
    o.enable_or_expansion = false;
    configs.push_back({"- OR-expansion", o});
  }
  {
    EvalOptions o = base;
    o.enable_projection_fusion = false;
    configs.push_back({"- projection fusion", o});
  }
  {
    EvalOptions o = base;
    o.enable_unify_index = false;
    configs.push_back({"- unify index", o});
  }
  {
    EvalOptions o = base;
    o.enable_selection_pushdown = false;
    configs.push_back({"- selection pushdown", o});
  }
  {
    EvalOptions o = base;
    o.enable_hash_join = false;
    o.enable_or_expansion = false;
    o.enable_projection_fusion = false;
    o.enable_unify_index = false;
    o.enable_selection_pushdown = false;
    configs.push_back({"no passes", o});
  }
  return configs;
}

TEST(PlanPassesTest, EveryToggleConfigProducesIdenticalRelations) {
  using Evaluator =
      StatusOr<Relation> (*)(const AlgPtr&, const Database&,
                             const EvalOptions&);
  std::vector<std::pair<const char*, Evaluator>> modes = {
      {"set", &EvalSet}, {"bag", &EvalBag}, {"sql", &EvalSql}};
  std::mt19937_64 rng(42);
  for (int round = 0; round < 5; ++round) {
    Database db = RandomDatabase(rng);
    for (const AlgPtr& q : OptimizerCorpus()) {
      for (const auto& [mode_name, eval] : modes) {
        auto reference = eval(q, db, EvalOptions{});
        ASSERT_TRUE(reference.ok())
            << mode_name << " " << q->ToString() << ": "
            << reference.status().ToString();
        for (const auto& [cfg_name, opts] : ToggleConfigs()) {
          auto res = eval(q, db, opts);
          ASSERT_TRUE(res.ok()) << mode_name << "/" << cfg_name << " "
                                << q->ToString();
          EXPECT_TRUE(reference->SameRows(*res))
              << mode_name << "/" << cfg_name << " " << q->ToString() << ": "
              << reference->ToString() << " vs " << res->ToString();
        }
      }
    }
  }
}

TEST(PlanPassesTest, FigureOneQueriesStableUnderToggles) {
  for (bool with_null : {false, true}) {
    Database db = FigureOne(with_null);
    AlgPtr unpaid = NotInPredicate(
        Project(Scan("Orders"), {"oid"}),
        Rename(Project(Scan("Payments"), {"oid"}), {"poid"}), {"oid"},
        {"poid"}, CTrue());
    for (const auto& [cfg_name, opts] : ToggleConfigs()) {
      auto sql_ref = EvalSql(unpaid, db);
      auto sql = EvalSql(unpaid, db, opts);
      ASSERT_TRUE(sql_ref.ok() && sql.ok()) << cfg_name;
      EXPECT_TRUE(sql_ref->SameRows(*sql)) << cfg_name;
    }
  }
}

TEST(PlanShapeTest, ConjunctiveQueryUsesExactlyOneHashJoin) {
  std::mt19937_64 rng(3);
  Database db = RandomDatabase(rng);
  // π(σ_{R_b = S_a}(R × S)) — the canonical conjunctive join query.
  AlgPtr q = Project(Select(Product(Scan("R"), Scan("S")), CEq("R_b", "S_a")),
                     {"R_a", "S_b"});
  auto plan = Compile(q, EvalMode::kSetNaive, EvalOptions{}, db);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(CountOps(**plan, PhysOp::kHashJoin), 1u)
      << PlanToString(**plan);
  EXPECT_EQ(CountOps(**plan, PhysOp::kNLJoin), 0u) << PlanToString(**plan);
  // The fused projection lives on the join: no separate Project operator.
  EXPECT_EQ(CountOps(**plan, PhysOp::kProject), 0u) << PlanToString(**plan);

  // With the hash-join pass off, the same query falls back to NLJoin.
  EvalOptions no_hash;
  no_hash.enable_hash_join = false;
  auto nl = Compile(q, EvalMode::kSetNaive, no_hash, db);
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(CountOps(**nl, PhysOp::kHashJoin), 0u);
  EXPECT_EQ(CountOps(**nl, PhysOp::kNLJoin), 1u);
}

TEST(PlanShapeTest, PushdownMovesOneSidedConjunctBelowJoin) {
  std::mt19937_64 rng(4);
  Database db = RandomDatabase(rng);
  AlgPtr q = Select(Product(Scan("R"), Scan("S")),
                    CAnd(CEq("R_b", "S_a"), CEqc("R_a", Value::Int(0))));
  auto plan = Compile(q, EvalMode::kSetNaive, EvalOptions{}, db);
  ASSERT_TRUE(plan.ok());
  // R_a = 0 filters the R scan below the hash join.
  EXPECT_EQ(CountOps(**plan, PhysOp::kFilterSel), 1u) << PlanToString(**plan);
  EXPECT_EQ(CountOps(**plan, PhysOp::kHashJoin), 1u) << PlanToString(**plan);

  EvalOptions no_push;
  no_push.enable_selection_pushdown = false;
  auto kept = Compile(q, EvalMode::kSetNaive, no_push, db);
  ASSERT_TRUE(kept.ok());
  // The conjunct stays in the join residual: no filter operator at all.
  EXPECT_EQ(CountOps(**kept, PhysOp::kFilterSel), 0u) << PlanToString(**kept);
}

TEST(PlanShapeTest, OrExpansionSharesCompiledInputs) {
  std::mt19937_64 rng(5);
  Database db = RandomDatabase(rng);
  AlgPtr q = Select(Product(Scan("R"), Rename(Scan("S"), {"S_x", "S_y"})),
                    COr(CEq("R_a", "S_x"), CEq("R_b", "S_y")));
  auto plan = Compile(q, EvalMode::kSetNaive, EvalOptions{}, db);
  ASSERT_TRUE(plan.ok());
  // Each disjunct is an equality: both branches hash-join, merged by one
  // union, over *shared* scan subtrees (the plan is a DAG).
  EXPECT_EQ(CountOps(**plan, PhysOp::kUnion), 1u) << PlanToString(**plan);
  EXPECT_EQ(CountOps(**plan, PhysOp::kHashJoin), 2u) << PlanToString(**plan);
  EXPECT_EQ(CountOps(**plan, PhysOp::kScanView), 2u) << PlanToString(**plan);
  bool has_shared = false;
  for (const auto& [node, count] : (*plan)->refcount) {
    (void)node;
    if (count > 1) has_shared = true;
  }
  EXPECT_TRUE(has_shared);
}

TEST(PlanExecTest, CompileOnceExecuteManyAcrossDatabases) {
  std::mt19937_64 rng(6);
  Database db1 = RandomDatabase(rng);
  Database db2 = RandomDatabase(rng);  // same schema, different rows
  AlgPtr q = Project(Select(Product(Scan("R"), Scan("S")), CEq("R_b", "S_a")),
                     {"R_a", "S_b"});
  auto plan = Compile(q, EvalMode::kSetNaive, EvalOptions{}, db1);
  ASSERT_TRUE(plan.ok());
  for (const Database* db : {&db1, &db2}) {
    auto via_plan = Execute(*plan, *db);
    auto direct = EvalSet(q, *db);
    ASSERT_TRUE(via_plan.ok() && direct.ok());
    EXPECT_TRUE(via_plan->SameRows(*direct));
  }
}

TEST(PlanExecTest, ScansAreBorrowedViews) {
  std::mt19937_64 rng(7);
  Database db = RandomDatabase(rng);  // RandomDatabase stores sets
  ScanResolver resolver(db);
  auto view = resolver.Resolve("R", /*collapse_to_set=*/true);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->borrowed());
  EXPECT_EQ(&view->rel(), &db.at("R"));  // zero-copy: the same object

  // A non-set relation under set collapse materialises once and is then
  // served from the cache.
  Relation bag({"x"});
  bag.Add({Value::Int(1)}, 3);
  db.Put("B", bag);
  auto b1 = resolver.Resolve("B", true);
  auto b2 = resolver.Resolve("B", true);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_NE(&b1->rel(), &db.at("B"));
  EXPECT_EQ(&b1->rel(), &b2->rel());  // cached copy is shared
  EXPECT_TRUE(b1->rel().IsSet());
  // Under bag semantics the same relation is borrowed untouched.
  auto braw = resolver.Resolve("B", false);
  ASSERT_TRUE(braw.ok());
  EXPECT_EQ(&braw->rel(), &db.at("B"));
}

TEST(PlanExecTest, RelationViewOwnBorrowRenameMaterialize) {
  Relation r({"a", "b"});
  r.Add({Value::Int(1), Value::Int(2)});
  RelationView borrowed = RelationView::Borrow(r);
  EXPECT_TRUE(borrowed.borrowed());
  RelationView renamed = borrowed.Renamed({"x", "y"});
  EXPECT_EQ(renamed.attrs(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(&renamed.rel(), &r);  // still zero-copy
  Relation materialized = std::move(renamed).Materialize();
  EXPECT_EQ(materialized.attrs(), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(materialized.SameRows(r));

  RelationView owned = RelationView::Own(std::move(r));
  EXPECT_FALSE(owned.borrowed());
  Relation back = std::move(owned).Materialize();
  EXPECT_EQ(back.Count(Tuple{Value::Int(1), Value::Int(2)}), 1u);
}

TEST(PlanExecTest, ParallelHashJoinMatchesSequential) {
  // Big enough to cross the parallel threshold; includes nulls so the
  // SQL-mode null-key skipping is exercised too.
  std::mt19937_64 rng(8);
  Database db;
  Relation l({"a", "b"}), r({"c", "d"});
  for (int i = 0; i < 1500; ++i) {
    l.Add({Value::Int(static_cast<int64_t>(rng() % 200)),
           Value::Int(static_cast<int64_t>(i))});
    if (i % 97 == 0) {
      r.Add({Value::Null(i), Value::Int(static_cast<int64_t>(rng() % 200))});
    } else {
      r.Add({Value::Int(static_cast<int64_t>(i)),
             Value::Int(static_cast<int64_t>(rng() % 200))});
    }
  }
  db.Put("L", l);
  db.Put("Rr", r);
  AlgPtr join = Join(Scan("L"), Scan("Rr"), CEq("b", "c"));
  AlgPtr fused = Project(Select(Product(Scan("L"), Scan("Rr")),
                                CEq("b", "c")),
                         {"a", "d"});
  for (const AlgPtr& q : {join, fused}) {
    for (auto eval : {&EvalSet, &EvalBag, &EvalSql}) {
      EvalOptions seq;
      auto ref = (*eval)(q, db, seq);
      ASSERT_TRUE(ref.ok());
      for (size_t threads : {2, 4}) {
        EvalOptions par;
        par.num_threads = threads;
        auto res = (*eval)(q, db, par);
        ASSERT_TRUE(res.ok());
        EXPECT_TRUE(ref->SameRows(*res))
            << q->ToString() << " with " << threads << " threads";
      }
    }
  }
}

TEST(PlanExecTest, ParallelJoinHonoursBudget) {
  Database db;
  Relation l({"a", "k"}), r({"k2", "b"});
  for (int i = 0; i < 1200; ++i) {
    l.Add({Value::Int(i), Value::Int(i % 8)});
    r.Add({Value::Int(i % 8), Value::Int(i)});
  }
  db.Put("L", l);
  db.Put("Rr", r);
  // 8 distinct keys with 150 rows per side each: 180000 distinct pairs,
  // far beyond the budget — every partition must abort promptly.
  EvalOptions opts;
  opts.num_threads = 4;
  opts.max_tuples = 10;
  auto res = EvalSet(Join(Scan("L"), Scan("Rr"), CEq("k", "k2")), db, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace incdb
