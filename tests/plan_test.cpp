// Tests for the physical-plan layer (src/eval/plan.h): every rewrite pass
// on/off must produce identical relations across all three evaluation
// modes on the desugar/chase corpus; compiled plans have the expected
// shape (a conjunctive query joins with exactly one HashJoin and no
// NLJoin); leaf scans borrow the database rows instead of copying; the
// parallel partitioned hash join agrees with the sequential one; the
// chunk-partitioned operators (NL join, difference, ⋉⇑) are row-for-row
// identical to sequential at every thread count; and the query-identity
// plan cache (src/eval/plan_cache.h) accounts hits/misses, distinguishes
// α-renamed from structurally identical queries, invalidates on schema
// change and survives concurrent lookups.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "algebra/builder.h"
#include "eval/eval.h"
#include "eval/parallel_policy.h"
#include "eval/plan.h"
#include "eval/plan_cache.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;
using testing_util::QueryZoo;
using testing_util::RandomDatabase;

/// The corpus the optimizer must be invisible on: the sugar-free QueryZoo,
/// the sugared desugar-corpus shapes, and ⋉⇑ (the unify-index pass's only
/// consumer), all over the RandomDatabase schema.
std::vector<AlgPtr> OptimizerCorpus() {
  std::vector<AlgPtr> corpus = QueryZoo();
  AlgPtr r = Scan("R");
  AlgPtr s = Scan("S");
  AlgPtr t = Scan("T");
  corpus.push_back(Join(r, s, CEq("R_b", "S_a")));
  corpus.push_back(Semijoin(r, s, CEq("R_a", "S_a")));
  corpus.push_back(Antijoin(r, s, CEq("R_a", "S_a")));
  corpus.push_back(InPredicate(Project(r, {"R_a"}), t, {"R_a"}, {"T_a"},
                               CTrue()));
  corpus.push_back(NotInPredicate(Project(r, {"R_a"}), t, {"R_a"}, {"T_a"},
                                  CTrue()));
  corpus.push_back(AntijoinUnify(r, s));
  corpus.push_back(Distinct(Project(r, {"R_a"})));
  // Join with a one-sided conjunct (exercises selection pushdown) and a
  // disjunctive join condition (exercises OR-expansion).
  corpus.push_back(Select(Product(r, Rename(s, {"S_x", "S_y"})),
                          CAnd(CEq("R_b", "S_x"),
                               CNeqc("R_a", Value::Int(1)))));
  corpus.push_back(Project(
      Select(Product(r, Rename(s, {"S_x", "S_y"})),
             COr(CEq("R_b", "S_x"), CIsNull("S_y"))),
      {"R_a", "S_y"}));
  return corpus;
}

std::vector<std::pair<const char*, EvalOptions>> ToggleConfigs() {
  std::vector<std::pair<const char*, EvalOptions>> configs;
  EvalOptions base;
  configs.push_back({"all passes", base});
  {
    EvalOptions o = base;
    o.enable_hash_join = false;
    configs.push_back({"- hash join", o});
  }
  {
    EvalOptions o = base;
    o.enable_or_expansion = false;
    configs.push_back({"- OR-expansion", o});
  }
  {
    EvalOptions o = base;
    o.enable_projection_fusion = false;
    configs.push_back({"- projection fusion", o});
  }
  {
    EvalOptions o = base;
    o.enable_unify_index = false;
    configs.push_back({"- unify index", o});
  }
  {
    EvalOptions o = base;
    o.enable_selection_pushdown = false;
    configs.push_back({"- selection pushdown", o});
  }
  {
    EvalOptions o = base;
    o.enable_hash_join = false;
    o.enable_or_expansion = false;
    o.enable_projection_fusion = false;
    o.enable_unify_index = false;
    o.enable_selection_pushdown = false;
    configs.push_back({"no passes", o});
  }
  return configs;
}

TEST(PlanPassesTest, EveryToggleConfigProducesIdenticalRelations) {
  using Evaluator =
      StatusOr<Relation> (*)(const AlgPtr&, const Database&,
                             const EvalOptions&);
  std::vector<std::pair<const char*, Evaluator>> modes = {
      {"set", &EvalSet}, {"bag", &EvalBag}, {"sql", &EvalSql}};
  std::mt19937_64 rng(42);
  for (int round = 0; round < 5; ++round) {
    Database db = RandomDatabase(rng);
    for (const AlgPtr& q : OptimizerCorpus()) {
      for (const auto& [mode_name, eval] : modes) {
        auto reference = eval(q, db, EvalOptions{});
        ASSERT_TRUE(reference.ok())
            << mode_name << " " << q->ToString() << ": "
            << reference.status().ToString();
        for (const auto& [cfg_name, opts] : ToggleConfigs()) {
          auto res = eval(q, db, opts);
          ASSERT_TRUE(res.ok()) << mode_name << "/" << cfg_name << " "
                                << q->ToString();
          EXPECT_TRUE(reference->SameRows(*res))
              << mode_name << "/" << cfg_name << " " << q->ToString() << ": "
              << reference->ToString() << " vs " << res->ToString();
        }
      }
    }
  }
}

TEST(PlanPassesTest, FigureOneQueriesStableUnderToggles) {
  for (bool with_null : {false, true}) {
    Database db = FigureOne(with_null);
    AlgPtr unpaid = NotInPredicate(
        Project(Scan("Orders"), {"oid"}),
        Rename(Project(Scan("Payments"), {"oid"}), {"poid"}), {"oid"},
        {"poid"}, CTrue());
    for (const auto& [cfg_name, opts] : ToggleConfigs()) {
      auto sql_ref = EvalSql(unpaid, db);
      auto sql = EvalSql(unpaid, db, opts);
      ASSERT_TRUE(sql_ref.ok() && sql.ok()) << cfg_name;
      EXPECT_TRUE(sql_ref->SameRows(*sql)) << cfg_name;
    }
  }
}

TEST(PlanShapeTest, ConjunctiveQueryUsesExactlyOneHashJoin) {
  std::mt19937_64 rng(3);
  Database db = RandomDatabase(rng);
  // π(σ_{R_b = S_a}(R × S)) — the canonical conjunctive join query.
  AlgPtr q = Project(Select(Product(Scan("R"), Scan("S")), CEq("R_b", "S_a")),
                     {"R_a", "S_b"});
  auto plan = Compile(q, EvalMode::kSetNaive, EvalOptions{}, db);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(CountOps(**plan, PhysOp::kHashJoin), 1u)
      << PlanToString(**plan);
  EXPECT_EQ(CountOps(**plan, PhysOp::kNLJoin), 0u) << PlanToString(**plan);
  // The fused projection lives on the join: no separate Project operator.
  EXPECT_EQ(CountOps(**plan, PhysOp::kProject), 0u) << PlanToString(**plan);

  // With the hash-join pass off, the same query falls back to NLJoin.
  EvalOptions no_hash;
  no_hash.enable_hash_join = false;
  auto nl = Compile(q, EvalMode::kSetNaive, no_hash, db);
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(CountOps(**nl, PhysOp::kHashJoin), 0u);
  EXPECT_EQ(CountOps(**nl, PhysOp::kNLJoin), 1u);
}

TEST(PlanShapeTest, PushdownMovesOneSidedConjunctBelowJoin) {
  std::mt19937_64 rng(4);
  Database db = RandomDatabase(rng);
  AlgPtr q = Select(Product(Scan("R"), Scan("S")),
                    CAnd(CEq("R_b", "S_a"), CEqc("R_a", Value::Int(0))));
  auto plan = Compile(q, EvalMode::kSetNaive, EvalOptions{}, db);
  ASSERT_TRUE(plan.ok());
  // R_a = 0 filters the R scan below the hash join.
  EXPECT_EQ(CountOps(**plan, PhysOp::kFilterSel), 1u) << PlanToString(**plan);
  EXPECT_EQ(CountOps(**plan, PhysOp::kHashJoin), 1u) << PlanToString(**plan);

  EvalOptions no_push;
  no_push.enable_selection_pushdown = false;
  auto kept = Compile(q, EvalMode::kSetNaive, no_push, db);
  ASSERT_TRUE(kept.ok());
  // The conjunct stays in the join residual: no filter operator at all.
  EXPECT_EQ(CountOps(**kept, PhysOp::kFilterSel), 0u) << PlanToString(**kept);
}

TEST(PlanShapeTest, OrExpansionSharesCompiledInputs) {
  std::mt19937_64 rng(5);
  Database db = RandomDatabase(rng);
  AlgPtr q = Select(Product(Scan("R"), Rename(Scan("S"), {"S_x", "S_y"})),
                    COr(CEq("R_a", "S_x"), CEq("R_b", "S_y")));
  auto plan = Compile(q, EvalMode::kSetNaive, EvalOptions{}, db);
  ASSERT_TRUE(plan.ok());
  // Each disjunct is an equality: both branches hash-join, merged by one
  // union, over *shared* scan subtrees (the plan is a DAG).
  EXPECT_EQ(CountOps(**plan, PhysOp::kUnion), 1u) << PlanToString(**plan);
  EXPECT_EQ(CountOps(**plan, PhysOp::kHashJoin), 2u) << PlanToString(**plan);
  EXPECT_EQ(CountOps(**plan, PhysOp::kScanView), 2u) << PlanToString(**plan);
  bool has_shared = false;
  for (const auto& [node, count] : (*plan)->refcount) {
    (void)node;
    if (count > 1) has_shared = true;
  }
  EXPECT_TRUE(has_shared);
}

TEST(PlanExecTest, CompileOnceExecuteManyAcrossDatabases) {
  std::mt19937_64 rng(6);
  Database db1 = RandomDatabase(rng);
  Database db2 = RandomDatabase(rng);  // same schema, different rows
  AlgPtr q = Project(Select(Product(Scan("R"), Scan("S")), CEq("R_b", "S_a")),
                     {"R_a", "S_b"});
  auto plan = Compile(q, EvalMode::kSetNaive, EvalOptions{}, db1);
  ASSERT_TRUE(plan.ok());
  for (const Database* db : {&db1, &db2}) {
    auto via_plan = Execute(*plan, *db);
    auto direct = EvalSet(q, *db);
    ASSERT_TRUE(via_plan.ok() && direct.ok());
    EXPECT_TRUE(via_plan->SameRows(*direct));
  }
}

TEST(PlanExecTest, ScansAreBorrowedViews) {
  std::mt19937_64 rng(7);
  Database db = RandomDatabase(rng);  // RandomDatabase stores sets
  ScanResolver resolver(db);
  auto view = resolver.Resolve("R", /*collapse_to_set=*/true);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->borrowed());
  EXPECT_EQ(&view->rel(), &db.at("R"));  // zero-copy: the same object

  // A non-set relation under set collapse materialises once and is then
  // served from the cache.
  Relation bag({"x"});
  bag.Add({Value::Int(1)}, 3);
  db.Put("B", bag);
  auto b1 = resolver.Resolve("B", true);
  auto b2 = resolver.Resolve("B", true);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_NE(&b1->rel(), &db.at("B"));
  EXPECT_EQ(&b1->rel(), &b2->rel());  // cached copy is shared
  EXPECT_TRUE(b1->rel().IsSet());
  // Under bag semantics the same relation is borrowed untouched.
  auto braw = resolver.Resolve("B", false);
  ASSERT_TRUE(braw.ok());
  EXPECT_EQ(&braw->rel(), &db.at("B"));
}

TEST(PlanExecTest, RelationViewOwnBorrowRenameMaterialize) {
  Relation r({"a", "b"});
  r.Add({Value::Int(1), Value::Int(2)});
  RelationView borrowed = RelationView::Borrow(r);
  EXPECT_TRUE(borrowed.borrowed());
  RelationView renamed = borrowed.Renamed({"x", "y"});
  EXPECT_EQ(renamed.attrs(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(&renamed.rel(), &r);  // still zero-copy
  Relation materialized = std::move(renamed).Materialize();
  EXPECT_EQ(materialized.attrs(), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(materialized.SameRows(r));

  RelationView owned = RelationView::Own(std::move(r));
  EXPECT_FALSE(owned.borrowed());
  Relation back = std::move(owned).Materialize();
  EXPECT_EQ(back.Count(Tuple{Value::Int(1), Value::Int(2)}), 1u);
}

TEST(PlanExecTest, ParallelHashJoinMatchesSequential) {
  // Big enough to cross the parallel threshold; includes nulls so the
  // SQL-mode null-key skipping is exercised too.
  std::mt19937_64 rng(8);
  Database db;
  Relation l({"a", "b"}), r({"c", "d"});
  for (int i = 0; i < 1500; ++i) {
    l.Add({Value::Int(static_cast<int64_t>(rng() % 200)),
           Value::Int(static_cast<int64_t>(i))});
    if (i % 97 == 0) {
      r.Add({Value::Null(i), Value::Int(static_cast<int64_t>(rng() % 200))});
    } else {
      r.Add({Value::Int(static_cast<int64_t>(i)),
             Value::Int(static_cast<int64_t>(rng() % 200))});
    }
  }
  db.Put("L", l);
  db.Put("Rr", r);
  AlgPtr join = Join(Scan("L"), Scan("Rr"), CEq("b", "c"));
  AlgPtr fused = Project(Select(Product(Scan("L"), Scan("Rr")),
                                CEq("b", "c")),
                         {"a", "d"});
  for (const AlgPtr& q : {join, fused}) {
    using EvalFn = StatusOr<Relation> (*)(const AlgPtr&, const Database&,
                                           const EvalOptions&);
    for (EvalFn eval : {EvalFn(&EvalSet), EvalFn(&EvalBag), EvalFn(&EvalSql)}) {
      EvalOptions seq;
      auto ref = (*eval)(q, db, seq);
      ASSERT_TRUE(ref.ok());
      for (size_t threads : {2, 4}) {
        EvalOptions par;
        par.num_threads = threads;
        auto res = (*eval)(q, db, par);
        ASSERT_TRUE(res.ok());
        EXPECT_TRUE(ref->SameRows(*res))
            << q->ToString() << " with " << threads << " threads";
      }
    }
  }
}

// A medium database for the chunk-partitioned operators: two overlapping
// 3000-row relations with sprinkled nulls and bag multiplicities.
Database ChunkOpDatabase() {
  std::mt19937_64 rng(9);
  Database db;
  Relation p1({"a", "b"}), p2({"a", "b"});
  for (int i = 0; i < 3000; ++i) {
    Value a = (i % 61 == 0) ? Value::Null(i % 7)
                            : Value::Int(static_cast<int64_t>(rng() % 2000));
    p1.Add({a, Value::Int(static_cast<int64_t>(rng() % 50))}, 1 + i % 3);
    Value a2 = (i % 83 == 0) ? Value::Null(i % 5)
                             : Value::Int(static_cast<int64_t>(rng() % 2000));
    p2.Add({a2, Value::Int(static_cast<int64_t>(rng() % 50))}, 1 + i % 2);
  }
  db.Put("P1", std::move(p1));
  db.Put("P2", std::move(p2));
  // Smaller pair for the quadratic NL join (400×400 pairs per eval).
  Relation n1({"a", "b"}), n2({"c", "d"});
  for (int i = 0; i < 400; ++i) {
    n1.Add({Value::Int(static_cast<int64_t>(rng() % 300)),
            Value::Int(static_cast<int64_t>(rng() % 50))});
    n2.Add({(i % 37 == 0) ? Value::Null(i % 3)
                          : Value::Int(static_cast<int64_t>(rng() % 300)),
            Value::Int(static_cast<int64_t>(rng() % 50))});
  }
  db.Put("N1", std::move(n1));
  db.Put("N2", std::move(n2));
  return db;
}

/// The chunk-partitioned operators promise more than SameRows: chunk
/// outputs merged in chunk order reproduce the exact sequential insertion
/// order, so the materialised relation is row-for-row identical at every
/// thread count.
TEST(PlanExecTest, ChunkParallelOperatorsAreBitIdenticalToSequential) {
  Database db = ChunkOpDatabase();
  // Difference (HashDiff in all three modes, incl. SQL NOT-IN), ⋉⇑, and a
  // non-equality join condition that compiles to an NLJoin.
  std::vector<AlgPtr> queries = {
      Diff(Scan("P1"), Scan("P2")),
      AntijoinUnify(Scan("P1"), Scan("P2")),
      Join(Scan("N1"), Scan("N2"), CLt("b", "d")),
  };
  for (const AlgPtr& q : queries) {
    using EvalFn = StatusOr<Relation> (*)(const AlgPtr&, const Database&,
                                           const EvalOptions&);
    for (EvalFn eval : {EvalFn(&EvalSet), EvalFn(&EvalBag), EvalFn(&EvalSql)}) {
      EvalOptions seq;
      seq.use_plan_cache = false;
      auto ref = (*eval)(q, db, seq);
      ASSERT_TRUE(ref.ok()) << q->ToString() << ": "
                            << ref.status().ToString();
      for (size_t threads : {2, 3, 8}) {
        EvalOptions par = seq;
        par.num_threads = threads;
        auto res = (*eval)(q, db, par);
        ASSERT_TRUE(res.ok()) << q->ToString() << " with " << threads
                              << " threads: " << res.status().ToString();
        EXPECT_TRUE(ref->IdenticalTo(*res))
            << q->ToString() << " with " << threads << " threads";
      }
    }
  }
}

// parallel_min_rows = 0 forces the chunked paths on tiny inputs — the
// boundary cases (empty sides, single rows, more chunks than rows).
TEST(PlanExecTest, ChunkParallelOperatorsHandleTinyInputs) {
  std::mt19937_64 rng(10);
  Database db = RandomDatabase(rng, /*tuples_per_rel=*/2);
  std::vector<AlgPtr> queries = {
      Diff(Scan("R"), Scan("S")),
      AntijoinUnify(Scan("R"), Scan("S")),
      Join(Scan("R"), Rename(Scan("S"), {"c", "d"}), CNeq("R_a", "c")),
      Diff(Select(Scan("R"), CFalse()), Scan("S")),  // empty left side
  };
  for (const AlgPtr& q : queries) {
    using EvalFn = StatusOr<Relation> (*)(const AlgPtr&, const Database&,
                                           const EvalOptions&);
    for (EvalFn eval : {EvalFn(&EvalSet), EvalFn(&EvalBag), EvalFn(&EvalSql)}) {
      EvalOptions seq;
      seq.use_plan_cache = false;
      auto ref = (*eval)(q, db, seq);
      ASSERT_TRUE(ref.ok());
      for (size_t threads : {2, 8}) {
        EvalOptions par = seq;
        par.num_threads = threads;
        par.parallel_min_rows = 0;
        auto res = (*eval)(q, db, par);
        ASSERT_TRUE(res.ok());
        EXPECT_TRUE(ref->IdenticalTo(*res))
            << q->ToString() << " with " << threads << " threads";
      }
    }
  }
}

TEST(PlanExecTest, ParallelNLJoinHonoursBudget) {
  Database db;
  Relation l({"a", "b"}), r({"c", "d"});
  for (int i = 0; i < 600; ++i) {
    l.Add({Value::Int(i), Value::Int(i % 7)});
    r.Add({Value::Int(i), Value::Int((i + 1) % 7)});
  }
  db.Put("L", l);
  db.Put("Rr", r);
  // b ≠ d holds for most of the 360000 pairs — far beyond the budget.
  EvalOptions opts;
  opts.num_threads = 4;
  opts.max_tuples = 10;
  opts.use_plan_cache = false;
  auto res = EvalSet(Join(Scan("L"), Scan("Rr"), CNeq("b", "d")), db, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST(PlanOptionsTest, NumThreadsZeroAndAbsurdValuesAreValidated) {
  std::mt19937_64 rng(11);
  Database db = RandomDatabase(rng);
  AlgPtr q = Diff(Scan("R"), Scan("S"));
  // 0 resolves to hardware_concurrency (at least 1).
  EvalOptions zero;
  zero.num_threads = 0;
  auto plan = Compile(q, EvalMode::kSetNaive, zero, db);
  ASSERT_TRUE(plan.ok());
  EXPECT_GE((*plan)->opts.num_threads, 1u);
  EXPECT_LE((*plan)->opts.num_threads, kMaxEvalThreads);
  // An absurd request clamps instead of allocating a million partitions.
  EvalOptions absurd;
  absurd.num_threads = 1 << 20;
  auto clamped = Compile(q, EvalMode::kSetNaive, absurd, db);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ((*clamped)->opts.num_threads, kMaxEvalThreads);
  // Regression: both evaluate and agree with the sequential result.
  EvalOptions seq;
  seq.use_plan_cache = false;
  auto ref = EvalSet(q, db, seq);
  ASSERT_TRUE(ref.ok());
  for (EvalOptions o : {zero, absurd}) {
    o.parallel_min_rows = 0;
    o.use_plan_cache = false;
    auto res = EvalSet(q, db, o);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(ref->IdenticalTo(*res));
  }
}

TEST(PlanCacheTest, HitMissAccountingAndLookupIdentity) {
  std::mt19937_64 rng(12);
  Database db = RandomDatabase(rng);
  PlanCache cache;
  EvalOptions opts;
  auto build = [] {
    return Project(Select(Product(Scan("R"), Scan("S")), CEq("R_b", "S_a")),
                   {"R_a", "S_b"});
  };
  auto p1 = cache.CompileCached(build(), EvalMode::kSetNaive, opts, db);
  ASSERT_TRUE(p1.ok());
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.size, 1u);
  // A structurally identical but independently built tree hits: identity
  // is structural, not pointer-based.
  auto p2 = cache.CompileCached(build(), EvalMode::kSetNaive, opts, db);
  ASSERT_TRUE(p2.ok());
  s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(p1->get(), p2->get());  // the same compiled plan object
  // The cached plan executes correctly.
  auto via_cache = Execute(*p2, db);
  auto direct = EvalSet(build(), db, opts);
  ASSERT_TRUE(via_cache.ok() && direct.ok());
  EXPECT_TRUE(via_cache->SameRows(*direct));
}

TEST(PlanCacheTest, AlphaRenamedAndDistinctQueriesKeySeparately) {
  std::mt19937_64 rng(13);
  Database db = RandomDatabase(rng);
  PlanCache cache;
  EvalOptions opts;
  // What participates in query identity, asserted on the key bytes
  // directly: structural equality of independently built trees, attribute
  // names, mode, toggles and the scanned schemas all do.
  EXPECT_EQ(PlanCacheKey(Rename(Scan("R"), {"x", "y"}), EvalMode::kSetNaive,
                         opts, db),
            PlanCacheKey(Rename(Scan("R"), {"x", "y"}), EvalMode::kSetNaive,
                         opts, db));
  EXPECT_NE(PlanCacheKey(Rename(Scan("R"), {"x", "y"}), EvalMode::kSetNaive,
                         opts, db),
            PlanCacheKey(Rename(Scan("R"), {"u", "v"}), EvalMode::kSetNaive,
                         opts, db));
  EXPECT_NE(PlanCacheKey(Scan("R"), EvalMode::kSetNaive, opts, db),
            PlanCacheKey(Scan("R"), EvalMode::kSetSql, opts, db));
  // α-renamed: same shape, different attribute names — attribute names
  // are semantic (they define the output schema), so these must not
  // collide on one entry.
  auto a = cache.CompileCached(Rename(Scan("R"), {"x", "y"}),
                               EvalMode::kSetNaive, opts, db);
  auto b = cache.CompileCached(Rename(Scan("R"), {"u", "v"}),
                               EvalMode::kSetNaive, opts, db);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ((*a)->root->attrs, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ((*b)->root->attrs, (std::vector<std::string>{"u", "v"}));
  // Mode and option changes key separately too (the options are baked
  // into the compiled plan).
  AlgPtr q = Select(Scan("R"), CEq("R_a", "R_b"));
  (void)cache.CompileCached(q, EvalMode::kSetNaive, opts, db);
  (void)cache.CompileCached(q, EvalMode::kSetSql, opts, db);
  EvalOptions other = opts;
  other.enable_selection_pushdown = false;
  (void)cache.CompileCached(q, EvalMode::kSetNaive, other, db);
  EXPECT_EQ(cache.stats().misses, 5u);
  // num_threads participates via its *resolved* value: 0 and
  // hardware_concurrency() share one entry.
  EvalOptions zero = opts;
  zero.num_threads = 0;
  EvalOptions hw = opts;
  hw.num_threads = ResolveNumThreads(0);
  EXPECT_EQ(PlanCacheKey(q, EvalMode::kSetNaive, zero, db),
            PlanCacheKey(q, EvalMode::kSetNaive, hw, db));
  (void)cache.CompileCached(q, EvalMode::kSetNaive, zero, db);
  uint64_t misses = cache.stats().misses;
  (void)cache.CompileCached(q, EvalMode::kSetNaive, hw, db);
  EXPECT_EQ(cache.stats().misses, misses);
}

TEST(PlanCacheTest, SchemaChangeInvalidatesAndClearDropsEntries) {
  std::mt19937_64 rng(14);
  Database db = RandomDatabase(rng);
  PlanCache cache;
  EvalOptions opts;
  AlgPtr q = Project(Scan("R"), {"R_a"});
  (void)cache.CompileCached(q, EvalMode::kSetNaive, opts, db);
  (void)cache.CompileCached(q, EvalMode::kSetNaive, opts, db);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Same rows, different schema: the scanned-schema bytes in the key
  // change, so the next lookup recompiles against the new schema.
  Relation renamed = db.at("R");
  ASSERT_TRUE(renamed.RenameAttrs({"R_a", "R_z"}).ok());
  db.Put("R", std::move(renamed));
  auto recompiled = cache.CompileCached(q, EvalMode::kSetNaive, opts, db);
  ASSERT_TRUE(recompiled.ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  auto res = Execute(*recompiled, db);
  ASSERT_TRUE(res.ok());
  // A schema change that breaks the query surfaces the compile error
  // instead of serving the stale plan.
  Relation narrow({"R_z"});
  db.Put("R", std::move(narrow));
  auto broken = cache.CompileCached(q, EvalMode::kSetNaive, opts, db);
  EXPECT_FALSE(broken.ok());
  // Clear() drops entries; the next lookup misses again.
  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsedBeyondCapacity) {
  std::mt19937_64 rng(15);
  Database db = RandomDatabase(rng);
  PlanCache cache(/*capacity=*/2);
  EvalOptions opts;
  AlgPtr q1 = Project(Scan("R"), {"R_a"});
  AlgPtr q2 = Project(Scan("R"), {"R_b"});
  AlgPtr q3 = Project(Scan("S"), {"S_a"});
  (void)cache.CompileCached(q1, EvalMode::kSetNaive, opts, db);
  (void)cache.CompileCached(q2, EvalMode::kSetNaive, opts, db);
  (void)cache.CompileCached(q1, EvalMode::kSetNaive, opts, db);  // refresh q1
  (void)cache.CompileCached(q3, EvalMode::kSetNaive, opts, db);  // evicts q2
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.evictions, 1u);
  (void)cache.CompileCached(q1, EvalMode::kSetNaive, opts, db);
  EXPECT_EQ(cache.stats().hits, 2u);  // q1 survived the eviction
  (void)cache.CompileCached(q2, EvalMode::kSetNaive, opts, db);
  EXPECT_EQ(cache.stats().misses, 4u);  // q2 did not
}

TEST(PlanCacheTest, ConcurrentLookupsFromManyThreads) {
  std::mt19937_64 rng(16);
  Database db = RandomDatabase(rng);
  PlanCache cache;
  const std::vector<AlgPtr> queries = testing_util::QueryZoo();
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      EvalOptions opts;
      for (int i = 0; i < kIters; ++i) {
        const AlgPtr& q = queries[(w + i) % queries.size()];
        auto plan = cache.CompileCached(q, EvalMode::kSetNaive, opts, db);
        if (!plan.ok() || !(*plan)->root) {
          failures.fetch_add(1);
          continue;
        }
        auto res = Execute(*plan, db);
        if (!res.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  PlanCacheStats s = cache.stats();
  // Every lookup is accounted exactly once (racing cold-key compiles may
  // add extra misses but never lose a count).
  EXPECT_EQ(s.hits + s.misses,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_LE(s.size, s.capacity);
}

TEST(PlanCacheTest, GlobalCacheServesTheEvalWrappers) {
  std::mt19937_64 rng(17);
  Database db = RandomDatabase(rng);
  AlgPtr q = Select(Product(Scan("R"), Rename(Scan("S"), {"S_x", "S_y"})),
                    CEq("R_b", "S_x"));
  PlanCacheStats before = PlanCache::Global().stats();
  EvalOptions opts;  // use_plan_cache defaults to true
  auto r1 = EvalSet(q, db, opts);
  auto r2 = EvalSet(q, db, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1->IdenticalTo(*r2));
  PlanCacheStats after = PlanCache::Global().stats();
  EXPECT_GE(after.hits, before.hits + 1);
  // Opting out recompiles per call and never touches the counters.
  EvalOptions uncached;
  uncached.use_plan_cache = false;
  PlanCacheStats mid = PlanCache::Global().stats();
  auto r3 = EvalSet(q, db, uncached);
  ASSERT_TRUE(r3.ok());
  PlanCacheStats end = PlanCache::Global().stats();
  EXPECT_EQ(mid.hits + mid.misses, end.hits + end.misses);
}

TEST(PlanExecTest, ParallelJoinHonoursBudget) {
  Database db;
  Relation l({"a", "k"}), r({"k2", "b"});
  for (int i = 0; i < 1200; ++i) {
    l.Add({Value::Int(i), Value::Int(i % 8)});
    r.Add({Value::Int(i % 8), Value::Int(i)});
  }
  db.Put("L", l);
  db.Put("Rr", r);
  // 8 distinct keys with 150 rows per side each: 180000 distinct pairs,
  // far beyond the budget — every partition must abort promptly.
  EvalOptions opts;
  opts.num_threads = 4;
  opts.max_tuples = 10;
  auto res = EvalSet(Join(Scan("L"), Scan("Rr"), CEq("k", "k2")), db, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

// Regression for the difference_parallel non-speedup: at the benchmark's
// committed 16k-tuple scale (weight ≈ 26k left+right rows) the hash-probe
// difference lost to pool dispatch at 4 threads (1.01 ms @1t vs 1.05 ms
// @4t). The per-op grain must keep that shape sequential under the default
// parallel_min_rows while still going parallel at genuinely large scale,
// and parallel_min_rows = 0 (the fuzzer / unit-test override) must keep
// forcing the parallel paths on any input.
TEST(ParallelPolicyTest, DifferenceGrainKeepsBenchScaleSequential) {
  constexpr size_t kDefaultMinRows = EvalOptions{}.parallel_min_rows;
  // The committed bench shape: |L| ≈ 16k, |R| ≈ 10k ⇒ weight ≈ 26k.
  EXPECT_FALSE(ChunkParallelismProfitable(4, 15925, 26101, kDefaultMinRows,
                                          ChunkOp::kDifference));
  // Genuinely large inputs still split across the pool.
  EXPECT_TRUE(ChunkParallelismProfitable(4, 100'000, 200'000, kDefaultMinRows,
                                         ChunkOp::kDifference));
  // Tests force the parallel paths on tiny inputs with min_rows = 0.
  EXPECT_TRUE(
      ChunkParallelismProfitable(4, 100, 200, 0, ChunkOp::kDifference));
  EXPECT_TRUE(ChunkParallelismProfitable(8, 2, 4, 0, ChunkOp::kDifference));
  // Single-threaded or single-row inputs never dispatch.
  EXPECT_FALSE(ChunkParallelismProfitable(1, 100'000, 200'000, 0,
                                          ChunkOp::kDifference));
  EXPECT_FALSE(
      ChunkParallelismProfitable(4, 1, 1'000'000, 0, ChunkOp::kDifference));
}

TEST(ParallelPolicyTest, PairCountingOpsKeepUnitGrain) {
  constexpr size_t kDefaultMinRows = EvalOptions{}.parallel_min_rows;
  // The NL join counts pairs: the committed bench shape (1.2k × 1.2k ≈
  // 1.44M pairs) stays parallel — its @4t speedup is real (529 µs → 224 µs
  // in BENCH_baseline).
  EXPECT_TRUE(ChunkParallelismProfitable(4, 1200, 1'440'000, kDefaultMinRows,
                                         ChunkOp::kNLJoin));
  EXPECT_TRUE(ChunkParallelismProfitable(4, 16'000, 26'000, kDefaultMinRows,
                                         ChunkOp::kUnifySemiJoin));
  EXPECT_EQ(ChunkGrain(ChunkOp::kNLJoin), 1u);
  EXPECT_EQ(ChunkGrain(ChunkOp::kUnifySemiJoin), 1u);
  EXPECT_GT(ChunkGrain(ChunkOp::kDifference), 1u);
}

}  // namespace
}  // namespace incdb
